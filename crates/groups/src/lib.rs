//! Black-box group framework.
//!
//! Section 2 of Ivanyos–Magniez–Santha works with *black-box groups*: elements
//! encoded as strings, group operations performed by oracles `U_G`, `U_G⁻¹`,
//! plus an identity-test oracle when encodings are not unique. This crate
//! provides:
//!
//! - the [`Group`] trait — the black-box interface (multiplication, inverse,
//!   identity test, canonical forms for non-unique encodings) plus derived
//!   helpers (powers, commutators, conjugation);
//! - concrete families used throughout the paper:
//!   [`perm::Perm`]utation groups with Schreier–Sims machinery
//!   ([`stabchain::StabilizerChain`]), matrix groups over GF(p) and packed
//!   GF(2) ([`matgf`]), Abelian products ([`group::AbelianProduct`]),
//!   semidirect products `Z₂^k ⋊ Z_m` and wreath products `Z₂^k ≀ Z₂`
//!   ([`semidirect`]), extraspecial `p`-groups ([`extraspecial`]), dihedral
//!   groups ([`dihedral`]), and factor groups with *non-unique* encodings
//!   ([`factor`]);
//! - group-theoretic machinery: subgroup/normal closure and derived series
//!   ([`closure`]), polycyclic series and composition factors of solvable
//!   groups ([`series`]), straight-line programs ([`slp`]), free-group words
//!   and presentations ([`words`]), random subproducts and product
//!   replacement ([`random`]), GF(2) linear algebra ([`gf2`]), the
//!   byte-string encoding adapter of the black-box model ([`encoding`]),
//!   and the salting wrapper giving any group non-unique encodings
//!   ([`salted`]).

pub mod closure;
pub mod dihedral;
pub mod encoding;
pub mod extraspecial;
pub mod factor;
pub mod gf2;
pub mod group;
pub mod matgf;
pub mod perm;
pub mod random;
pub mod salted;
pub mod semidirect;
pub mod series;
pub mod slp;
pub mod stabchain;
pub mod words;

pub use group::{AbelianProduct, CyclicGroup, DirectProduct, Group};
pub use perm::Perm;
pub use stabchain::StabilizerChain;
