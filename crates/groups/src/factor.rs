//! Factor groups with **non-unique encodings**.
//!
//! Section 2: "Typical examples of groups which fit in this model are factor
//! groups G/N of matrix groups G, where N is a normal subgroup such that
//! testing membership in N can be accomplished efficiently." Every element
//! of `G/N` is encoded by *any* of its `|N|` coset members, so encodings are
//! not unique and the identity test is an oracle (membership in `N`).
//!
//! Theorems 7 and 8 are proved for exactly this model; the tests in
//! `nahsp-core` run them against this wrapper.

use crate::closure::enumerate_subgroup;
use crate::group::Group;
use std::collections::HashSet;
use std::sync::Arc;

/// The factor group `G/N`, elements encoded (non-uniquely) by elements of
/// `G`. `N` must be normal; this is asserted probabilistically at
/// construction (conjugates of generators of `N` by generators of `G` are
/// checked for membership).
#[derive(Clone)]
pub struct FactorGroup<G: Group> {
    base: G,
    /// Canonical-form set of all elements of `N` (enumerated).
    n_set: Arc<HashSet<G::Elem>>,
    n_size: usize,
    /// All elements of N, for canonicalization scans.
    n_elems: Arc<Vec<G::Elem>>,
}

impl<G: Group> FactorGroup<G> {
    /// Build `G/N` from generators of the normal subgroup `N`; enumerates
    /// `N` (so `|N|` must be below `limit`).
    pub fn new(base: G, n_gens: &[G::Elem], limit: usize) -> Self {
        let n_elems = enumerate_subgroup(&base, n_gens, limit).expect("normal subgroup too large");
        let n_set: HashSet<G::Elem> = n_elems.iter().cloned().collect();
        // Normality check: conjugates of N-generators stay in N.
        for g in base.generators() {
            for h in n_gens {
                let c = base.canonical(&base.conjugate(&g, h));
                assert!(n_set.contains(&c), "subgroup is not normal");
            }
        }
        FactorGroup {
            base,
            n_size: n_elems.len(),
            n_set: Arc::new(n_set),
            n_elems: Arc::new(n_elems),
        }
    }

    pub fn base(&self) -> &G {
        &self.base
    }

    pub fn n_size(&self) -> usize {
        self.n_size
    }

    /// Membership of `x` in `N` — the identity test of the factor group.
    pub fn in_n(&self, x: &G::Elem) -> bool {
        self.n_set.contains(&self.base.canonical(x))
    }
}

impl<G: Group> Group for FactorGroup<G> {
    type Elem = G::Elem;

    fn identity(&self) -> G::Elem {
        self.base.identity()
    }

    fn multiply(&self, a: &G::Elem, b: &G::Elem) -> G::Elem {
        self.base.multiply(a, b)
    }

    fn inverse(&self, a: &G::Elem) -> G::Elem {
        self.base.inverse(a)
    }

    fn generators(&self) -> Vec<G::Elem> {
        self.base.generators()
    }

    /// The identity-test oracle: `xN = N` iff `x ∈ N`.
    fn is_identity(&self, a: &G::Elem) -> bool {
        self.in_n(a)
    }

    /// Canonical encoding of the coset `aN`: the minimum (in the encoding
    /// order) of `{a·n : n ∈ N}` in base-canonical form. Cost `O(|N|)` —
    /// this *is* the cost model of non-unique encodings.
    fn canonical(&self, a: &G::Elem) -> G::Elem {
        self.n_elems
            .iter()
            .map(|n| self.base.canonical(&self.base.multiply(a, n)))
            .min()
            .expect("N is never empty")
    }

    fn order_hint(&self) -> Option<u64> {
        Some(self.base.order_hint()? / self.n_size as u64)
    }

    fn exponent_hint(&self) -> Option<u64> {
        // exponent of G/N divides exponent of G
        self.base.exponent_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::AbelianProduct;
    use crate::perm::{Perm, PermGroup};

    #[test]
    fn s4_mod_v4_is_s3_like() {
        let s4 = PermGroup::symmetric(4);
        let v4 = vec![
            Perm::from_cycles(4, &[&[0, 1], &[2, 3]]),
            Perm::from_cycles(4, &[&[0, 2], &[1, 3]]),
        ];
        let q = FactorGroup::new(s4.clone(), &v4, 100);
        assert_eq!(q.n_size(), 4);
        // PermGroup carries no order hint, so neither does the quotient.
        assert_eq!(q.order_hint(), None);
        // Enumerate the quotient through canonical encodings.
        let elems = enumerate_subgroup(&q, &q.generators(), 100).unwrap();
        assert_eq!(elems.len(), 6, "S4/V4 has 6 elements");
    }

    #[test]
    fn identity_test_accepts_all_of_n() {
        let s4 = PermGroup::symmetric(4);
        let v4 = vec![
            Perm::from_cycles(4, &[&[0, 1], &[2, 3]]),
            Perm::from_cycles(4, &[&[0, 2], &[1, 3]]),
        ];
        let q = FactorGroup::new(s4, &v4, 100);
        assert!(q.is_identity(&Perm::identity(4)));
        assert!(q.is_identity(&Perm::from_cycles(4, &[&[0, 1], &[2, 3]])));
        assert!(!q.is_identity(&Perm::from_cycles(4, &[&[0, 1]])));
    }

    #[test]
    fn eq_elem_identifies_coset_members() {
        let s4 = PermGroup::symmetric(4);
        let v4 = vec![
            Perm::from_cycles(4, &[&[0, 1], &[2, 3]]),
            Perm::from_cycles(4, &[&[0, 2], &[1, 3]]),
        ];
        let q = FactorGroup::new(s4.clone(), &v4, 100);
        let t = Perm::from_cycles(4, &[&[0, 1]]);
        let tn = s4.multiply(&t, &Perm::from_cycles(4, &[&[0, 2], &[1, 3]]));
        assert_ne!(t, tn, "encodings differ");
        assert!(q.eq_elem(&t, &tn), "but they are the same coset");
        assert_eq!(q.canonical(&t), q.canonical(&tn));
    }

    #[test]
    #[should_panic(expected = "not normal")]
    fn rejects_non_normal_subgroup() {
        let s4 = PermGroup::symmetric(4);
        let h = vec![Perm::from_cycles(4, &[&[0, 1]])]; // <(01)> is not normal
        FactorGroup::new(s4, &h, 100);
    }

    #[test]
    fn abelian_quotient() {
        // (Z4 × Z4)/⟨(2, 2)⟩ has order 8.
        let g = AbelianProduct::new(vec![4, 4]);
        let q = FactorGroup::new(g, &[vec![2u64, 2u64]], 100);
        assert_eq!(q.n_size(), 2);
        let elems = enumerate_subgroup(&q, &q.generators(), 100).unwrap();
        assert_eq!(elems.len(), 8);
    }

    #[test]
    fn pow_in_quotient_respects_cosets() {
        let g = AbelianProduct::new(vec![8]);
        let q = FactorGroup::new(g, &[vec![4u64]], 100);
        // In Z8 / <4> ≅ Z4: 1 has order 4.
        assert!(!q.is_identity(&q.pow(&vec![1u64], 2)));
        assert!(q.is_identity(&q.pow(&vec![1u64], 4)));
    }
}
