//! Extraspecial `p`-groups (Corollary 12's family).
//!
//! A group is extraspecial if `G′ = Z(G)` has order `p` and `G/G′` is
//! elementary Abelian. The paper's Corollary 12 solves the HSP in these
//! groups in time `poly(input + p)` via Theorem 11 (`|G′| = p`).
//!
//! We realize the exponent-`p` extraspecial group of order `p^{1+2n}` as the
//! "generalized Heisenberg" group on `Z_p^{2n} × Z_p` with the cocycle
//! `B(x, y) = Σ_i x_{2i} · y_{2i+1}`:
//! `(x, c)·(y, d) = (x + y, c + d + B(x, y))`.
//! Then `[(x,c),(y,d)] = (0, B(x,y) − B(y,x))` spans the center
//! `{(0, c)} ≅ Z_p`.

use crate::group::Group;

/// Extraspecial `p`-group of order `p^{2n+1}` (exponent `p` for odd `p`;
/// for `p = 2, n = 1` this is the dihedral group `D₄`).
#[derive(Clone, Debug)]
pub struct Extraspecial {
    pub p: u64,
    pub n: usize,
}

impl Extraspecial {
    pub fn new(p: u64, n: usize) -> Self {
        assert!(p >= 2, "p must be at least 2");
        assert!(n >= 1, "need at least one symplectic pair");
        // Order must fit u64 comfortably for enumeration helpers.
        assert!(
            (2 * n as u32 + 1) as u64 * (64 - p.leading_zeros() as u64) < 63,
            "group too large for u64 element encoding"
        );
        Extraspecial { p, n }
    }

    /// The Heisenberg group of order `p³` (`n = 1`).
    pub fn heisenberg(p: u64) -> Self {
        Extraspecial::new(p, 1)
    }

    /// The bilinear cocycle `B(x, y) = Σ_i x_{2i} y_{2i+1} mod p`.
    fn cocycle(&self, x: &[u64], y: &[u64]) -> u64 {
        let mut acc = 0u64;
        for i in 0..self.n {
            acc = (acc + x[2 * i] * y[2 * i + 1]) % self.p;
        }
        acc
    }

    /// Generators of the center `Z(G) = {(0, c)} = G′`.
    pub fn center_generator(&self) -> <Self as Group>::Elem {
        let mut v = vec![0u64; 2 * self.n];
        v.push(1);
        v
    }
}

impl Group for Extraspecial {
    /// `(x_0, …, x_{2n−1}, c)`: symplectic vector followed by the central
    /// coordinate, all mod `p`.
    type Elem = Vec<u64>;

    fn identity(&self) -> Vec<u64> {
        vec![0; 2 * self.n + 1]
    }

    fn multiply(&self, a: &Vec<u64>, b: &Vec<u64>) -> Vec<u64> {
        let p = self.p;
        let k = 2 * self.n;
        let mut out = Vec::with_capacity(k + 1);
        for i in 0..k {
            out.push((a[i] + b[i]) % p);
        }
        out.push((a[k] + b[k] + self.cocycle(&a[..k], &b[..k])) % p);
        out
    }

    fn inverse(&self, a: &Vec<u64>) -> Vec<u64> {
        let p = self.p;
        let k = 2 * self.n;
        let mut out: Vec<u64> = a[..k].iter().map(|&x| (p - x % p) % p).collect();
        // (x, c)(−x, d) = (0, c + d + B(x, −x)); require d = −c − B(x, −x).
        let b = self.cocycle(&a[..k], &out);
        out.push((2 * p - a[k] % p - b) % p);
        out
    }

    fn generators(&self) -> Vec<Vec<u64>> {
        // The 2n "symplectic" unit vectors generate everything (their
        // commutators produce the center).
        (0..2 * self.n)
            .map(|i| {
                let mut v = vec![0u64; 2 * self.n + 1];
                v[i] = 1;
                v
            })
            .collect()
    }

    fn order_hint(&self) -> Option<u64> {
        self.p.checked_pow(2 * self.n as u32 + 1)
    }

    fn exponent_hint(&self) -> Option<u64> {
        // Exponent p for odd p; p^2 covers p = 2 as well.
        Some(self.p * self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::{center, commutator_subgroup, enumerate_subgroup};

    #[test]
    fn heisenberg_axioms() {
        for p in [2u64, 3, 5] {
            let g = Extraspecial::heisenberg(p);
            let all = enumerate_subgroup(&g, &g.generators(), 1000).unwrap();
            assert_eq!(all.len() as u64, p * p * p, "order p^3 for p={p}");
            for a in all.iter().take(20) {
                assert!(g.is_identity(&g.multiply(a, &g.inverse(a))));
                for b in all.iter().take(20) {
                    for c in all.iter().take(5) {
                        let l = g.multiply(&g.multiply(a, b), c);
                        let r = g.multiply(a, &g.multiply(b, c));
                        assert_eq!(l, r, "associativity p={p}");
                    }
                }
            }
        }
    }

    #[test]
    fn commutator_equals_center_of_order_p() {
        for p in [2u64, 3, 5, 7] {
            let g = Extraspecial::heisenberg(p);
            let comm = commutator_subgroup(&g, 10_000).unwrap();
            assert_eq!(comm.len() as u64, p, "G' has order p for p={p}");
            let z = center(&g, 10_000).unwrap();
            assert_eq!(z.len() as u64, p, "center has order p for p={p}");
            let comm_set: std::collections::HashSet<_> = comm.into_iter().collect();
            for c in z {
                assert!(comm_set.contains(&c), "G' != Z(G)");
            }
        }
    }

    #[test]
    fn quotient_is_elementary_abelian() {
        // For odd p, every element has order p (exponent-p group).
        let g = Extraspecial::heisenberg(5);
        let all = enumerate_subgroup(&g, &g.generators(), 1000).unwrap();
        for a in &all {
            assert!(g.is_identity(&g.pow(a, 5)), "element order divides 5");
        }
    }

    #[test]
    fn p2_is_dihedral_like() {
        // p = 2, n = 1: order 8, exponent 4 (D4).
        let g = Extraspecial::heisenberg(2);
        let all = enumerate_subgroup(&g, &g.generators(), 100).unwrap();
        assert_eq!(all.len(), 8);
        let mut max_order = 1;
        for a in &all {
            let mut k = 1;
            let mut cur = a.clone();
            while !g.is_identity(&cur) {
                cur = g.multiply(&cur, a);
                k += 1;
            }
            max_order = max_order.max(k);
        }
        assert_eq!(max_order, 4);
    }

    #[test]
    fn larger_extraspecial_p_order() {
        // p = 3, n = 2: order 3^5 = 243.
        let g = Extraspecial::new(3, 2);
        let all = enumerate_subgroup(&g, &g.generators(), 1000).unwrap();
        assert_eq!(all.len(), 243);
        let comm = commutator_subgroup(&g, 1000).unwrap();
        assert_eq!(comm.len(), 3);
    }

    #[test]
    fn center_generator_is_central() {
        let g = Extraspecial::new(5, 1);
        let z = g.center_generator();
        for gen in g.generators() {
            assert!(g.commute(&z, &gen));
        }
        assert!(!g.is_identity(&z));
    }

    #[test]
    fn generator_commutators_hit_center() {
        let g = Extraspecial::heisenberg(7);
        let gens = g.generators();
        let c = g.commutator(&gens[0], &gens[1]);
        // [e1, e2] = (0, B(e1,e2) - B(e2,e1)) = (0, 1)
        assert_eq!(c, g.center_generator());
    }
}
