//! Free-group words, relators and presentations.
//!
//! A presentation (Section 3 of the paper) is a generating sequence together
//! with relators — words in the free group whose normal closure is the
//! kernel of the evaluation map. Theorem 8 substitutes concrete group
//! elements into the relators of a presentation of `G/N` to obtain the set
//! `R₀` whose normal closure (together with `S₀`) is the hidden normal
//! subgroup `N`.

use crate::group::Group;
use crate::slp::Slp;

/// A word in the free group on `k` generators: a product of `(index,
/// exponent)` syllables with nonzero exponents.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Word {
    pub syllables: Vec<(usize, i64)>,
}

impl Word {
    pub fn identity() -> Self {
        Word::default()
    }

    pub fn gen(i: usize) -> Self {
        Word {
            syllables: vec![(i, 1)],
        }
    }

    /// `x_i^e`.
    pub fn power(i: usize, e: i64) -> Self {
        if e == 0 {
            Word::identity()
        } else {
            Word {
                syllables: vec![(i, e)],
            }
        }
    }

    /// Free reduction: merge adjacent syllables with equal generator, drop
    /// zero exponents.
    pub fn reduced(&self) -> Word {
        let mut out: Vec<(usize, i64)> = Vec::with_capacity(self.syllables.len());
        for &(g, e) in &self.syllables {
            if e == 0 {
                continue;
            }
            match out.last_mut() {
                Some((lg, le)) if *lg == g => {
                    *le += e;
                    if *le == 0 {
                        out.pop();
                    }
                }
                _ => out.push((g, e)),
            }
        }
        Word { syllables: out }
    }

    pub fn concat(&self, other: &Word) -> Word {
        let mut syl = self.syllables.clone();
        syl.extend_from_slice(&other.syllables);
        Word { syllables: syl }.reduced()
    }

    pub fn inverse(&self) -> Word {
        Word {
            syllables: self.syllables.iter().rev().map(|&(g, e)| (g, -e)).collect(),
        }
    }

    /// Commutator word `[x_i, x_j] = x_i x_j x_i⁻¹ x_j⁻¹`.
    pub fn commutator(i: usize, j: usize) -> Word {
        Word {
            syllables: vec![(i, 1), (j, 1), (i, -1), (j, -1)],
        }
    }

    /// Substitute group elements for generators (the map `x_i ↦ gens[i]`).
    pub fn substitute<G: Group>(&self, group: &G, gens: &[G::Elem]) -> G::Elem {
        let mut acc = group.identity();
        for &(g, e) in &self.syllables {
            acc = group.multiply(&acc, &group.pow_signed(&gens[g], e));
        }
        acc
    }

    /// Convert to a straight-line program over the same generator numbering.
    pub fn to_slp(&self) -> Slp {
        use crate::slp::SlpStep;
        let mut slp = Slp::new();
        let mut acc: Option<usize> = None;
        for &(g, e) in &self.syllables {
            let gi = slp.push(SlpStep::Gen(g));
            let p = if e == 1 {
                gi
            } else {
                slp.push(SlpStep::Pow(gi, e))
            };
            acc = Some(match acc {
                None => p,
                Some(prev) => slp.push(SlpStep::Mul(prev, p)),
            });
        }
        slp
    }

    pub fn is_identity_word(&self) -> bool {
        self.reduced().syllables.is_empty()
    }
}

/// A finite presentation `⟨ x_1, …, x_k | relators ⟩`.
#[derive(Clone, Debug, Default)]
pub struct Presentation {
    pub num_gens: usize,
    pub relators: Vec<Word>,
}

impl Presentation {
    pub fn new(num_gens: usize, relators: Vec<Word>) -> Self {
        for r in &relators {
            for &(g, _) in &r.syllables {
                assert!(g < num_gens, "relator references generator {g}");
            }
        }
        Presentation { num_gens, relators }
    }

    /// Presentation of `Z_{m1} × … × Z_{mk}`: power relators `x_i^{m_i}` and
    /// all commutators. This is the presentation shape Theorem 11 obtains
    /// for the Abelian quotient `G/HG′`.
    pub fn abelian(moduli: &[u64]) -> Self {
        let k = moduli.len();
        let mut relators = Vec::new();
        for (i, &m) in moduli.iter().enumerate() {
            relators.push(Word::power(i, m as i64));
        }
        for i in 0..k {
            for j in (i + 1)..k {
                relators.push(Word::commutator(i, j));
            }
        }
        Presentation::new(k, relators)
    }

    /// Verify that substituting `gens` kills every relator (necessary
    /// condition for `gens` to define a homomorphic image).
    pub fn is_satisfied_by<G: Group>(&self, group: &G, gens: &[G::Elem]) -> bool {
        assert_eq!(gens.len(), self.num_gens);
        self.relators
            .iter()
            .all(|r| group.is_identity(&r.substitute(group, gens)))
    }

    /// Substitute `gens` into every relator, returning the set `R₀` of
    /// Theorem 8 (identity values dropped).
    pub fn substituted_relators<G: Group>(&self, group: &G, gens: &[G::Elem]) -> Vec<G::Elem> {
        self.relators
            .iter()
            .map(|r| r.substitute(group, gens))
            .filter(|e| !group.is_identity(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{AbelianProduct, CyclicGroup};
    use crate::perm::{Perm, PermGroup};

    #[test]
    fn reduction_merges_and_cancels() {
        let w = Word {
            syllables: vec![(0, 2), (0, -2), (1, 1), (1, 1), (2, 0)],
        };
        let r = w.reduced();
        assert_eq!(r.syllables, vec![(1, 2)]);
        assert!(Word::identity().is_identity_word());
    }

    #[test]
    fn inverse_concat_is_identity() {
        let w = Word {
            syllables: vec![(0, 1), (1, -2), (2, 3)],
        };
        assert!(w.concat(&w.inverse()).is_identity_word());
    }

    #[test]
    fn substitution_matches_direct_computation() {
        let g = PermGroup::symmetric(4);
        let a = Perm::from_cycles(4, &[&[0, 1]]);
        let b = Perm::from_cycles(4, &[&[0, 1, 2, 3]]);
        let w = Word {
            syllables: vec![(0, 1), (1, 2), (0, -1)],
        };
        let got = w.substitute(&g, &[a.clone(), b.clone()]);
        let expect = g.multiply(&g.multiply(&a, &g.pow(&b, 2)), &g.inverse(&a));
        assert_eq!(got, expect);
    }

    #[test]
    fn commutator_word_substitutes_to_commutator() {
        let g = PermGroup::symmetric(3);
        let a = Perm::from_cycles(3, &[&[0, 1]]);
        let b = Perm::from_cycles(3, &[&[1, 2]]);
        let w = Word::commutator(0, 1);
        assert_eq!(
            w.substitute(&g, &[a.clone(), b.clone()]),
            g.commutator(&a, &b)
        );
    }

    #[test]
    fn abelian_presentation_satisfied_by_abelian_group() {
        let pres = Presentation::abelian(&[2, 3, 4]);
        let g = AbelianProduct::new(vec![2, 3, 4]);
        assert!(pres.is_satisfied_by(&g, &g.generators()));
        assert_eq!(pres.relators.len(), 3 + 3);
    }

    #[test]
    fn abelian_presentation_detects_wrong_orders() {
        let pres = Presentation::abelian(&[2, 2]);
        let g = AbelianProduct::new(vec![4, 2]);
        // generator of Z4 does not satisfy x^2 = 1
        assert!(!pres.is_satisfied_by(&g, &g.generators()));
    }

    #[test]
    fn substituted_relators_drop_identities() {
        let pres = Presentation::abelian(&[6]);
        let g = CyclicGroup::new(6);
        // x^6 evaluates to identity: no relators survive.
        assert!(pres.substituted_relators(&g, &[1u64]).is_empty());
        // Substituting into Z_12 leaves 1*6 = 6 ≠ 0.
        let g12 = CyclicGroup::new(12);
        assert_eq!(pres.substituted_relators(&g12, &[1u64]), vec![6u64]);
    }

    #[test]
    fn word_to_slp_agrees_with_substitute() {
        let g = PermGroup::symmetric(4);
        let a = Perm::from_cycles(4, &[&[0, 1]]);
        let b = Perm::from_cycles(4, &[&[0, 1, 2, 3]]);
        let gens = [a, b];
        let w = Word {
            syllables: vec![(1, 3), (0, 1), (1, -1)],
        };
        assert_eq!(w.to_slp().evaluate(&g, &gens), w.substitute(&g, &gens));
    }
}
