//! Byte-string encodings — the literal black-box model.
//!
//! Section 2: "the elements of the group G are encoded by binary strings of
//! length n for some fixed integer n, what we call the encoding length".
//! This module gives each concrete element type a fixed-length byte encoding
//! and wraps any [`Group`] as a string-in/string-out black box, which is how
//! the oracle `U_G` of the quantum model addresses elements.

use crate::group::Group;
use bytes::{BufMut, Bytes, BytesMut};

/// Fixed-length byte encoding of group elements.
pub trait EncodeElem: Sized {
    /// Encoding length in bytes (fixed per instance context).
    fn encoded_len(&self) -> usize;
    fn encode(&self) -> Bytes;
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl EncodeElem for u64 {
    fn encoded_len(&self) -> usize {
        8
    }

    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8);
        b.put_u64(*self);
        b.freeze()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_be_bytes(bytes.try_into().ok()?))
    }
}

impl EncodeElem for (u64, u64) {
    fn encoded_len(&self) -> usize {
        16
    }

    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64(self.0);
        b.put_u64(self.1);
        b.freeze()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        Some((
            u64::from_be_bytes(bytes[..8].try_into().ok()?),
            u64::from_be_bytes(bytes[8..].try_into().ok()?),
        ))
    }
}

impl EncodeElem for Vec<u64> {
    fn encoded_len(&self) -> usize {
        8 * self.len()
    }

    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8 * self.len());
        for &x in self {
            b.put_u64(x);
        }
        b.freeze()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }
}

impl EncodeElem for crate::perm::Perm {
    fn encoded_len(&self) -> usize {
        4 * self.degree()
    }

    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(4 * self.degree());
        for &x in self.images() {
            b.put_u32(x);
        }
        b.freeze()
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(4) {
            return None;
        }
        let images: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
            .collect();
        let n = images.len();
        let mut seen = vec![false; n];
        for &i in &images {
            if (i as usize) >= n || seen[i as usize] {
                return None;
            }
            seen[i as usize] = true;
        }
        Some(crate::perm::Perm::from_images(images))
    }
}

/// A [`Group`] exposed through byte strings, mirroring the oracles
/// `U_G |g⟩|h⟩ = |g⟩|gh⟩` and `U_G⁻¹`. Invalid strings yield `None`
/// ("if the black box is fed such a string, its behavior can be arbitrary" —
/// ours rejects).
#[derive(Clone)]
pub struct ByteBlackBox<G: Group>
where
    G::Elem: EncodeElem,
{
    group: G,
}

impl<G: Group> ByteBlackBox<G>
where
    G::Elem: EncodeElem,
{
    pub fn new(group: G) -> Self {
        ByteBlackBox { group }
    }

    /// The encoding length `n` (bytes) of this black box.
    pub fn encoding_len(&self) -> usize {
        self.group.identity().encoded_len()
    }

    /// `U_G`: multiply, in string space.
    pub fn u_g(&self, g: &[u8], h: &[u8]) -> Option<Bytes> {
        let g = G::Elem::decode(g)?;
        let h = G::Elem::decode(h)?;
        Some(self.group.multiply(&g, &h).encode())
    }

    /// `U_G⁻¹`: left-divide, in string space.
    pub fn u_g_inv(&self, g: &[u8], h: &[u8]) -> Option<Bytes> {
        let g = G::Elem::decode(g)?;
        let h = G::Elem::decode(h)?;
        Some(self.group.multiply(&self.group.inverse(&g), &h).encode())
    }

    /// Identity-test oracle.
    pub fn is_identity(&self, g: &[u8]) -> Option<bool> {
        Some(self.group.is_identity(&G::Elem::decode(g)?))
    }

    pub fn generators(&self) -> Vec<Bytes> {
        self.group.generators().iter().map(|g| g.encode()).collect()
    }

    pub fn group(&self) -> &G {
        &self.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{AbelianProduct, CyclicGroup};
    use crate::perm::{Perm, PermGroup};

    #[test]
    fn u64_roundtrip() {
        for x in [0u64, 1, u64::MAX, 123456789] {
            assert_eq!(u64::decode(&x.encode()), Some(x));
        }
        assert_eq!(u64::decode(&[1, 2, 3]), None);
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![3u64, 1, 4, 1, 5];
        assert_eq!(Vec::<u64>::decode(&v.encode()), Some(v));
    }

    #[test]
    fn perm_roundtrip_and_validation() {
        let p = Perm::from_cycles(5, &[&[0, 2, 4]]);
        assert_eq!(Perm::decode(&p.encode()), Some(p));
        // invalid: repeated image
        let bad: Vec<u8> = [0u32, 0, 1].iter().flat_map(|x| x.to_be_bytes()).collect();
        assert_eq!(Perm::decode(&bad), None);
    }

    #[test]
    fn black_box_multiplication() {
        let bb = ByteBlackBox::new(CyclicGroup::new(10));
        let g = 7u64.encode();
        let h = 5u64.encode();
        let gh = bb.u_g(&g, &h).unwrap();
        assert_eq!(u64::decode(&gh), Some(2));
        let back = bb.u_g_inv(&g, &gh).unwrap();
        assert_eq!(u64::decode(&back), Some(5));
    }

    #[test]
    fn black_box_identity_oracle() {
        let bb = ByteBlackBox::new(AbelianProduct::new(vec![3, 3]));
        assert_eq!(bb.is_identity(&vec![0u64, 0].encode()), Some(true));
        assert_eq!(bb.is_identity(&vec![1u64, 0].encode()), Some(false));
    }

    #[test]
    fn black_box_rejects_garbage() {
        let bb = ByteBlackBox::new(PermGroup::symmetric(4));
        assert!(bb.u_g(&[1, 2, 3], &[4, 5, 6]).is_none());
    }

    #[test]
    fn tuple_encoding_for_semidirect_elements() {
        use crate::semidirect::Semidirect;
        let g = Semidirect::wreath_z2(2);
        let bb = ByteBlackBox::new(g.clone());
        assert_eq!(bb.encoding_len(), 16);
        let a = (0b0101u64, 1u64);
        let b = (0b0011u64, 0u64);
        let ab = bb.u_g(&a.encode(), &b.encode()).unwrap();
        assert_eq!(<(u64, u64)>::decode(&ab), Some(g.multiply(&a, &b)));
    }
}
