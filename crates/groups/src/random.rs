//! Random elements of black-box groups.
//!
//! The Beals–Babai algorithms (and the normal-closure algorithm of
//! Babai–Cooperman–Finkelstein–Luks–Seress the paper cites as \[1\]) consume
//! nearly-uniform random elements produced from generators alone. We provide
//! the two standard constructions: *random subproducts* and the
//! *product-replacement* (rattle) generator.

use crate::group::Group;
use rand::Rng;

/// A random subproduct `g_1^{ε₁} g_2^{ε₂} ⋯ g_k^{ε_k}` with independent
/// `ε_i ∈ {0, 1}`. For any proper subgroup, a random subproduct escapes it
/// with probability ≥ 1/2 — the workhorse bound behind Monte Carlo normal
/// closure.
pub fn random_subproduct<G: Group>(group: &G, gens: &[G::Elem], rng: &mut impl Rng) -> G::Elem {
    let mut acc = group.identity();
    for g in gens {
        if rng.gen::<bool>() {
            acc = group.multiply(&acc, g);
        }
    }
    acc
}

/// Product-replacement random element generator ("rattle"): a slot array
/// seeded with the generators, mixed by random slot multiplications, with an
/// accumulator returned per draw. After the burn-in the outputs are close to
/// uniform for the groups used here.
pub struct ProductReplacement<G: Group> {
    group: G,
    slots: Vec<G::Elem>,
    accumulator: G::Elem,
}

impl<G: Group> ProductReplacement<G> {
    /// `burn_in` mixing steps are performed immediately (50–100 is the
    /// customary range; we default callers to 60).
    pub fn new(group: G, gens: &[G::Elem], burn_in: usize, rng: &mut impl Rng) -> Self {
        assert!(!gens.is_empty(), "need at least one generator");
        let mut slots: Vec<G::Elem> = Vec::with_capacity(10.max(gens.len()));
        while slots.len() < 10.max(gens.len()) {
            slots.push(gens[slots.len() % gens.len()].clone());
        }
        let accumulator = group.identity();
        let mut pr = ProductReplacement {
            group,
            slots,
            accumulator,
        };
        for _ in 0..burn_in {
            pr.step(rng);
        }
        pr
    }

    fn step(&mut self, rng: &mut impl Rng) {
        let n = self.slots.len();
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let rhs = if rng.gen::<bool>() {
            self.slots[j].clone()
        } else {
            self.group.inverse(&self.slots[j])
        };
        self.slots[i] = if rng.gen::<bool>() {
            self.group.multiply(&self.slots[i], &rhs)
        } else {
            self.group.multiply(&rhs, &self.slots[i])
        };
        self.accumulator = self.group.multiply(&self.accumulator, &self.slots[i]);
    }

    /// Draw a pseudo-random group element.
    pub fn next(&mut self, rng: &mut impl Rng) -> G::Elem {
        self.step(rng);
        self.accumulator.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::enumerate_subgroup;
    use crate::perm::PermGroup;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn subproducts_stay_in_group() {
        let g = PermGroup::symmetric(5);
        let chain = crate::stabchain::StabilizerChain::new(5, &g.gens);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let x = random_subproduct(&g, &g.gens, &mut rng);
            assert!(chain.contains(&x));
        }
    }

    #[test]
    fn subproducts_escape_proper_subgroups() {
        // With 200 draws, pr(stay in any fixed proper subgroup) ≤ 2^{-200}.
        let g = PermGroup::symmetric(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a4: std::collections::HashSet<_> = enumerate_subgroup(
            &PermGroup::alternating(4),
            &PermGroup::alternating(4).gens,
            100,
        )
        .unwrap()
        .into_iter()
        .collect();
        let escaped = (0..200).any(|_| {
            let x = random_subproduct(&g, &g.gens, &mut rng);
            !a4.contains(&x)
        });
        assert!(escaped, "no subproduct escaped A4");
    }

    #[test]
    fn product_replacement_covers_group() {
        let g = PermGroup::symmetric(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut pr = ProductReplacement::new(g.clone(), &g.gens, 60, &mut rng);
        let mut counts: HashMap<_, usize> = HashMap::new();
        let draws = 2400;
        for _ in 0..draws {
            *counts.entry(pr.next(&mut rng)).or_default() += 1;
        }
        // All 24 elements should appear, roughly uniformly.
        assert_eq!(counts.len(), 24, "did not cover S4");
        let expected = draws / 24;
        for (_, &c) in counts.iter() {
            assert!(
                c > expected / 4 && c < expected * 4,
                "count {c} far from uniform {expected}"
            );
        }
    }

    #[test]
    fn product_replacement_elements_valid() {
        let g = PermGroup::alternating(5);
        let chain = crate::stabchain::StabilizerChain::new(5, &g.gens);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut pr = ProductReplacement::new(g.clone(), &g.gens, 80, &mut rng);
        for _ in 0..100 {
            assert!(chain.contains(&pr.next(&mut rng)));
        }
    }
}
