//! Integer factorization: trial division + Pollard's ρ (Brent variant).
//!
//! The paper invokes Shor's factoring algorithm as an oracle (to factor group
//! exponents and orders of `GL(n, q)`). On a classical host we realize that
//! oracle with Pollard ρ, which is exact and fast for the 64-bit integers
//! arising in our group families; the substitution is recorded in DESIGN.md.

use crate::arith::{gcd, mod_mul};
use crate::primes::is_prime;

/// A factorization as a sorted list of `(prime, multiplicity)` pairs.
pub type Factorization = Vec<(u64, u32)>;

/// Pollard ρ with Brent cycle detection; returns a non-trivial factor of a
/// composite `n > 3`. Deterministic seed schedule so results are reproducible.
fn pollard_rho(n: u64) -> u64 {
    debug_assert!(n > 3 && !is_prime(n));
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut c = 1u64;
    loop {
        let f = |x: u64| (mod_mul(x, x, n) + c) % n;
        let mut x = 2u64;
        let mut y = 2u64;
        let mut d = 1u64;
        let mut count = 0u32;
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
            count += 1;
            if count > 1 << 22 {
                break; // unlucky parameter; retry with a new c
            }
        }
        if d != n && d != 1 {
            return d;
        }
        c += 1;
    }
}

/// Full prime factorization of `n >= 1`, sorted by prime.
pub fn factor(n: u64) -> Factorization {
    let mut out: Vec<(u64, u32)> = Vec::new();
    if n <= 1 {
        return out;
    }
    let mut stack = vec![n];
    let mut primes: Vec<u64> = Vec::new();
    while let Some(mut m) = stack.pop() {
        // Strip small primes first — cheap and helps ρ avoid bad cases.
        for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31] {
            while m % p == 0 {
                primes.push(p);
                m /= p;
            }
        }
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            primes.push(m);
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    primes.sort_unstable();
    for p in primes {
        match out.last_mut() {
            Some((q, e)) if *q == p => *e += 1,
            _ => out.push((p, 1)),
        }
    }
    out
}

/// Factorization as an iterator-friendly map from prime to multiplicity.
pub fn factor_map(n: u64) -> std::collections::BTreeMap<u64, u32> {
    factor(n).into_iter().collect()
}

/// All divisors of `n`, sorted ascending. Intended for moderate `n` (the
/// number of divisors of a `u64` never exceeds 103 680, but memory scales with
/// the count).
pub fn divisors(n: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut divs = vec![1u64];
    for (p, e) in factor(n) {
        let prev = divs.clone();
        let mut pe = 1u64;
        for _ in 0..e {
            pe *= p;
            divs.extend(prev.iter().map(|d| d * pe));
        }
    }
    divs.sort_unstable();
    divs
}

/// Euler's totient via factorization.
pub fn euler_phi(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut phi = n;
    for (p, _) in factor(n) {
        phi = phi / p * (p - 1);
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::gcd;

    fn recompose(f: &Factorization) -> u64 {
        f.iter()
            .map(|&(p, e)| p.pow(e))
            .fold(1u64, |a, b| a.checked_mul(b).unwrap())
    }

    #[test]
    fn factor_small() {
        assert!(factor(0).is_empty());
        assert!(factor(1).is_empty());
        assert_eq!(factor(2), vec![(2, 1)]);
        assert_eq!(factor(12), vec![(2, 2), (3, 1)]);
        assert_eq!(factor(97), vec![(97, 1)]);
        assert_eq!(factor(1024), vec![(2, 10)]);
    }

    #[test]
    fn factor_recomposes_exhaustive() {
        for n in 1..5000u64 {
            let f = factor(n);
            assert_eq!(recompose(&f), n, "n={n}");
            for &(p, _) in &f {
                assert!(is_prime(p), "non-prime factor {p} of {n}");
            }
        }
    }

    #[test]
    fn factor_semiprimes() {
        // Products of two large primes: the case Pollard ρ must handle.
        let cases = [
            1000003u64 * 1000033,
            2147483647u64 * 65537,
            99990001u64 * 9999991,
        ];
        for n in cases {
            let f = factor(n);
            assert_eq!(recompose(&f), n);
            assert_eq!(f.iter().map(|&(_, e)| e).sum::<u32>(), 2);
        }
    }

    #[test]
    fn factor_prime_powers() {
        assert_eq!(factor(3u64.pow(20)), vec![(3, 20)]);
        assert_eq!(factor(65537u64 * 65537), vec![(65537, 2)]);
    }

    #[test]
    fn divisors_correct() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(36).len(), 9);
        for n in 1..300u64 {
            let ds = divisors(n);
            let naive: Vec<u64> = (1..=n).filter(|d| n % d == 0).collect();
            assert_eq!(ds, naive, "n={n}");
        }
    }

    #[test]
    fn phi_matches_naive() {
        for n in 1..500u64 {
            let naive = (1..=n).filter(|&k| gcd(k, n) == 1).count() as u64;
            assert_eq!(euler_phi(n), naive, "n={n}");
        }
    }
}
