//! Exact modular arithmetic on `u64` values (intermediates in `u128`).

/// Greatest common divisor (binary-free Euclid; `gcd(0, 0) == 0`).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; panics on overflow past `u64::MAX`.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b).expect("lcm overflow")
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        let sign = if a < 0 { -1 } else { 1 };
        return (a.abs(), sign, 0);
    }
    let (g, x, y) = egcd(b, a % b);
    (g, y, x - (a / b) * y)
}

/// `a * b mod m` without overflow.
#[inline]
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `a + b mod m` without overflow.
#[inline]
pub fn mod_add(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    ((a as u128 + b as u128) % m as u128) as u64
}

/// `base^exp mod m` by square-and-multiply. `m == 1` yields `0`.
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Modular inverse of `a` modulo `m`, if `gcd(a, m) == 1`.
pub fn mod_inv(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    if m == 1 {
        return Some(0);
    }
    let (g, x, _) = egcd((a % m) as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some(x.rem_euclid(m as i128) as u64)
}

/// Chinese remainder theorem for a pair of congruences.
///
/// Finds `x mod lcm(m1, m2)` with `x ≡ r1 (mod m1)` and `x ≡ r2 (mod m2)`,
/// or `None` when the congruences are incompatible. Moduli need not be
/// coprime.
pub fn crt_pair(r1: u64, m1: u64, r2: u64, m2: u64) -> Option<(u64, u64)> {
    assert!(m1 > 0 && m2 > 0, "CRT moduli must be positive");
    let g = gcd(m1, m2);
    let (r1, r2) = (r1 % m1, r2 % m2);
    let diff = r2 as i128 - r1 as i128;
    if diff.rem_euclid(g as i128) != 0 {
        return None;
    }
    let l = (m1 / g) as u128 * m2 as u128;
    if l > u64::MAX as u128 {
        return None; // combined modulus does not fit
    }
    let l = l as u64;
    // x = r1 + m1 * t, where t ≡ (r2 - r1)/g * inv(m1/g) (mod m2/g)
    let m2g = m2 / g;
    let inv = mod_inv((m1 / g) % m2g.max(1), m2g.max(1))?;
    let t = mod_mul(
        (diff / g as i128).rem_euclid(m2g.max(1) as i128) as u64,
        inv,
        m2g.max(1),
    );
    let x = (r1 as u128 + m1 as u128 * t as u128) % l as u128;
    Some((x as u64, l))
}

/// CRT over a list of congruences `(residue, modulus)`.
pub fn crt(congruences: &[(u64, u64)]) -> Option<(u64, u64)> {
    let mut acc = (0u64, 1u64);
    for &(r, m) in congruences {
        acc = crt_pair(acc.0, acc.1, r, m)?;
    }
    Some(acc)
}

/// Integer square root (floor).
pub fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as u64;
    // Float rounding can be off by one in either direction; fix up exactly.
    // checked_mul: overflow means x*x > u64::MAX >= n, so shrink then too.
    while x.checked_mul(x).is_none_or(|s| s > n) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|s| s <= n) {
        x += 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(7, 13), 91);
    }

    #[test]
    fn egcd_bezout_identity() {
        for &(a, b) in &[(240i128, 46i128), (17, 0), (0, 9), (-24, 18), (1, 1)] {
            let (g, x, y) = egcd(a, b);
            assert_eq!(a * x + b * y, g, "bezout failed for ({a},{b})");
            assert!(g >= 0);
        }
    }

    #[test]
    fn mod_mul_no_overflow() {
        let m = u64::MAX - 58; // large modulus
        assert_eq!(mod_mul(m - 1, m - 1, m), 1);
    }

    #[test]
    fn mod_pow_matches_naive() {
        for m in [2u64, 3, 17, 1000] {
            for b in 0..10u64 {
                let mut naive = 1 % m;
                for e in 0..12u64 {
                    assert_eq!(mod_pow(b, e, m), naive, "b={b} e={e} m={m}");
                    naive = mod_mul(naive, b, m);
                }
            }
        }
    }

    #[test]
    fn mod_pow_modulus_one() {
        assert_eq!(mod_pow(5, 3, 1), 0);
    }

    #[test]
    fn mod_inv_valid_and_invalid() {
        assert_eq!(mod_inv(3, 7), Some(5));
        assert_eq!(mod_inv(2, 4), None);
        assert_eq!(mod_inv(1, 1), Some(0));
        for a in 1..30u64 {
            if gcd(a, 31) == 1 {
                let inv = mod_inv(a, 31).unwrap();
                assert_eq!(mod_mul(a, inv, 31), 1);
            }
        }
    }

    #[test]
    fn crt_coprime() {
        let (x, l) = crt_pair(2, 3, 3, 5).unwrap();
        assert_eq!(l, 15);
        assert_eq!(x % 3, 2);
        assert_eq!(x % 5, 3);
    }

    #[test]
    fn crt_non_coprime_compatible() {
        let (x, l) = crt_pair(2, 4, 4, 6).unwrap();
        assert_eq!(l, 12);
        assert_eq!(x % 4, 2);
        assert_eq!(x % 6, 4);
    }

    #[test]
    fn crt_incompatible() {
        assert!(crt_pair(1, 4, 2, 6).is_none());
    }

    #[test]
    fn crt_list() {
        let (x, l) = crt(&[(1, 2), (2, 3), (3, 5)]).unwrap();
        assert_eq!(l, 30);
        assert_eq!(x % 2, 1);
        assert_eq!(x % 3, 2);
        assert_eq!(x % 5, 3);
    }

    #[test]
    fn isqrt_exact() {
        for n in 0..2000u64 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "n={n} r={r}");
        }
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }
}
