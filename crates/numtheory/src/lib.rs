//! Classical number-theory substrate for the non-Abelian HSP reproduction.
//!
//! Every quantum algorithm in Ivanyos–Magniez–Santha (2001) leans on classical
//! number theory for post-processing: continued fractions after phase
//! estimation, CRT recombination in Pohlig–Hellman style order finding,
//! factoring of group exponents, and modular linear algebra. This crate
//! provides those primitives with `u64`/`u128`-exact arithmetic (no floating
//! point, no bignum dependency).
//!
//! Modules:
//! - [`arith`] — gcd/egcd, modular multiplication/exponentiation/inverse, CRT;
//! - [`primes`] — deterministic Miller–Rabin for `u64`, sieves, next-prime;
//! - [`mod@factor`] — Pollard ρ + trial division, factorization maps, divisors;
//! - [`cfrac`] — continued-fraction expansion and convergents (Shor
//!   post-processing);
//! - [`order`] — multiplicative order modulo `n` given a factored exponent;
//! - [`dlog`] — baby-step/giant-step and Pohlig–Hellman discrete logarithms.

pub mod arith;
pub mod cfrac;
pub mod dlog;
pub mod factor;
pub mod order;
pub mod primes;

pub use arith::{crt_pair, egcd, gcd, lcm, mod_inv, mod_mul, mod_pow};
pub use cfrac::{continued_fraction, convergents, denominator_approx};
pub use dlog::{bsgs, pohlig_hellman};
pub use factor::{divisors, factor, factor_map, Factorization};
pub use order::{element_order_from_exponent, multiplicative_order};
pub use primes::{is_prime, next_prime, primes_up_to};
