//! Continued fractions — the classical post-processing step of Shor's
//! period-finding algorithm.
//!
//! After measuring `y` in a Fourier register of size `Q`, the period `r`
//! satisfies `|y/Q - k/r| <= 1/(2Q)` for some integer `k`; the convergents of
//! `y/Q` with denominator below the order bound recover `r`.

/// Continued-fraction expansion of `num/den` (finite, canonical).
pub fn continued_fraction(mut num: u64, mut den: u64) -> Vec<u64> {
    assert!(den != 0, "denominator must be nonzero");
    let mut quotients = Vec::new();
    while den != 0 {
        quotients.push(num / den);
        let r = num % den;
        num = den;
        den = r;
    }
    quotients
}

/// Convergents `p_i/q_i` of a continued-fraction expansion.
///
/// Stops early (and silently) if a numerator or denominator would overflow
/// `u64`; all convergents returned are exact.
pub fn convergents(cf: &[u64]) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(cf.len());
    let (mut p0, mut q0): (u64, u64) = (1, 0);
    let (mut p1, mut q1): (u64, u64) = (0, 1);
    for &a in cf {
        let p = match a.checked_mul(p0).and_then(|x| x.checked_add(p1)) {
            Some(p) => p,
            None => break,
        };
        let q = match a.checked_mul(q0).and_then(|x| x.checked_add(q1)) {
            Some(q) => q,
            None => break,
        };
        out.push((p, q));
        p1 = p0;
        q1 = q0;
        p0 = p;
        q0 = q;
    }
    out
}

/// Best rational approximation `k/r` to `y/q` with `r <= max_den`, via the
/// convergents of the continued fraction. Returns the denominator `r`.
///
/// This is exactly the denominator Shor's algorithm extracts from a
/// measurement `y` out of `q` when the true period is at most `max_den`.
pub fn denominator_approx(y: u64, q: u64, max_den: u64) -> u64 {
    assert!(q > 0);
    if y == 0 {
        return 1;
    }
    let cf = continued_fraction(y, q);
    let mut best = 1u64;
    for (_, den) in convergents(&cf) {
        if den == 0 {
            continue;
        }
        if den <= max_den {
            best = den;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cf_of_simple_fractions() {
        assert_eq!(continued_fraction(1, 2), vec![0, 2]);
        assert_eq!(continued_fraction(7, 3), vec![2, 3]);
        // 649/200 = [3; 4, 12, 4]
        assert_eq!(continued_fraction(649, 200), vec![3, 4, 12, 4]);
        assert_eq!(continued_fraction(0, 5), vec![0]);
    }

    #[test]
    fn convergents_reconstruct() {
        let cf = continued_fraction(649, 200);
        let cs = convergents(&cf);
        assert_eq!(*cs.last().unwrap(), (649, 200));
        // The classic √2 approximations from [1; 2, 2, 2, ...]
        let cs = convergents(&[1, 2, 2, 2, 2]);
        assert_eq!(cs, vec![(1, 1), (3, 2), (7, 5), (17, 12), (41, 29)]);
    }

    #[test]
    fn shor_denominator_recovery() {
        // Simulate: period r, measurement y = round(k*q/r).
        let q: u64 = 1 << 20;
        for r in [3u64, 7, 12, 15, 64, 255, 1000] {
            for k in 1..r {
                if crate::arith::gcd(k, r) != 1 {
                    continue;
                }
                let y = ((k as u128 * q as u128 + (r as u128) / 2) / r as u128) as u64;
                let got = denominator_approx(y, q, r);
                assert_eq!(got, r, "failed r={r} k={k} y={y}");
            }
        }
    }

    #[test]
    fn zero_measurement_gives_trivial_denominator() {
        assert_eq!(denominator_approx(0, 1 << 10, 100), 1);
    }
}
