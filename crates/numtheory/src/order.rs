//! Multiplicative and group-element orders from a factored exponent.
//!
//! Given any multiple `E` of the order of an element (e.g. the group
//! exponent, or `|GL(n, q)| = (q^n - 1)(q^n - q) ⋯` for matrix groups as in
//! Section 3 of the paper), the exact order is found with
//! `O(log E · ω(E))` group operations by peeling prime factors.

use crate::arith::{gcd, mod_pow};
use crate::factor::factor;

/// Order of `a` in `(Z/nZ)^*`; requires `gcd(a, n) == 1`.
pub fn multiplicative_order(a: u64, n: u64) -> Option<u64> {
    if n == 0 || gcd(a % n.max(1), n) != 1 {
        return None;
    }
    if n == 1 {
        return Some(1);
    }
    let phi = crate::factor::euler_phi(n);
    Some(element_order_from_exponent(
        |e| mod_pow(a, e, n) == 1 % n,
        phi,
    ))
}

/// Exact order of a group element given a predicate `is_identity_pow(e)`
/// testing whether `g^e = 1`, and a known multiple `exponent` of the order.
///
/// Standard descent: start from `exponent` and for each prime factor `p`,
/// divide it out while the power still evaluates to the identity.
pub fn element_order_from_exponent<F: FnMut(u64) -> bool>(
    mut is_identity_pow: F,
    exponent: u64,
) -> u64 {
    assert!(exponent > 0, "exponent multiple must be positive");
    debug_assert!(
        is_identity_pow(exponent),
        "exponent is not a multiple of the order"
    );
    let mut ord = exponent;
    for (p, _) in factor(exponent) {
        while ord.is_multiple_of(p) && is_identity_pow(ord / p) {
            ord /= p;
        }
    }
    ord
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_mod_small_n() {
        assert_eq!(multiplicative_order(1, 7), Some(1));
        assert_eq!(multiplicative_order(2, 7), Some(3));
        assert_eq!(multiplicative_order(3, 7), Some(6));
        assert_eq!(multiplicative_order(2, 4), None); // not a unit
        assert_eq!(multiplicative_order(5, 1), Some(1));
    }

    #[test]
    fn orders_match_naive_exhaustive() {
        for n in 2..200u64 {
            for a in 1..n {
                if gcd(a, n) != 1 {
                    continue;
                }
                let mut x = a % n;
                let mut naive = 1u64;
                while x != 1 {
                    x = crate::arith::mod_mul(x, a, n);
                    naive += 1;
                }
                assert_eq!(multiplicative_order(a, n), Some(naive), "a={a} n={n}");
            }
        }
    }

    #[test]
    fn descent_from_overshooting_exponent() {
        // order of 2 mod 341 = 10; give exponent 340.
        let ord = element_order_from_exponent(|e| mod_pow(2, e, 341) == 1, 340);
        assert_eq!(ord, 10);
    }

    #[test]
    fn descent_identity_element() {
        let ord = element_order_from_exponent(|_| true, 720);
        assert_eq!(ord, 1);
    }
}
