//! Primality testing and prime generation.

use crate::arith::{mod_mul, mod_pow};

/// Deterministic Miller–Rabin for `u64`.
///
/// Uses the standard witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31,
/// 37}` which is known to be exact for all `n < 3.3 * 10^24`, in particular
/// for every `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Smallest prime strictly greater than `n`.
pub fn next_prime(n: u64) -> u64 {
    let mut c = n.checked_add(1).expect("next_prime overflow");
    if c <= 2 {
        return 2;
    }
    if c.is_multiple_of(2) {
        c += 1;
    }
    while !is_prime(c) {
        c += 2;
    }
    c
}

/// All primes `<= n` by a simple sieve of Eratosthenes.
pub fn primes_up_to(n: usize) -> Vec<u64> {
    if n < 2 {
        return Vec::new();
    }
    let mut sieve = vec![true; n + 1];
    sieve[0] = false;
    sieve[1] = false;
    let mut p = 2usize;
    while p * p <= n {
        if sieve[p] {
            let mut q = p * p;
            while q <= n {
                sieve[q] = false;
                q += p;
            }
        }
        p += 1;
    }
    sieve
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| if b { Some(i as u64) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let known = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43];
        for n in 0..45u64 {
            assert_eq!(is_prime(n), known.contains(&n), "n={n}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for &n in &[561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(n), "Carmichael {n} wrongly accepted");
        }
    }

    #[test]
    fn large_primes_accepted() {
        for &p in &[
            2147483647u64,        // 2^31 - 1 (Mersenne)
            (1 << 61) - 1,        // 2^61 - 1 (Mersenne)
            18446744073709551557, // largest u64 prime
            1000000007,
            1000000009,
        ] {
            assert!(is_prime(p), "prime {p} rejected");
        }
    }

    #[test]
    fn large_composites_rejected() {
        assert!(!is_prime((1u64 << 62) - 1));
        assert!(!is_prime(1000000007u64 * 3));
        assert!(!is_prime(u64::MAX));
    }

    #[test]
    fn next_prime_works() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(3), 5);
        assert_eq!(next_prime(13), 17);
        assert_eq!(next_prime(1000000), 1000003);
    }

    #[test]
    fn sieve_matches_miller_rabin() {
        let sieve = primes_up_to(10_000);
        let mr: Vec<u64> = (0..=10_000u64).filter(|&n| is_prime(n)).collect();
        assert_eq!(sieve, mr);
    }

    #[test]
    fn sieve_edge_cases() {
        assert!(primes_up_to(0).is_empty());
        assert!(primes_up_to(1).is_empty());
        assert_eq!(primes_up_to(2), vec![2]);
    }
}
