//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it actually uses: `rand::Rng` (`gen`, `gen_range`,
//! `gen_bool`), `rand::SeedableRng::seed_from_u64`, and
//! `rand::rngs::StdRng`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, so every fixed-seed test in
//! the workspace is reproducible. Integer ranges are sampled by exact
//! rejection (no modulo bias); `f64` uses the standard 53-bit mantissa
//! construction in `[0, 1)`.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only the `seed_from_u64` entry point the workspace
/// uses is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The `Standard` distribution: full-range integers, `[0, 1)` floats,
/// fair-coin booleans.
pub struct Standard;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <Standard as Distribution<u128>>::sample(&Standard, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform value in `[0, span)` by exact rejection sampling on 128 bits.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        return wide & (span - 1);
    }
    // Reject the top partial block of 2^128 so every residue is equally
    // likely: 2^128 mod span values are discarded per draw at most.
    let rem = (u128::MAX % span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if rem == 0 || wide <= u128::MAX - rem {
            return wide % span;
        }
    }
}

/// Integer types `gen_range` can sample. The two methods do modular
/// arithmetic in the type's own bit width (sign bits are just bits), which
/// makes the one generic `Range<T>` impl below sound for signed types too.
/// A single generic impl — rather than one impl per type — is what lets
/// integer-literal inference unify `gen_range(0..4)` with a `usize` context
/// exactly like the real `rand` crate does.
pub trait SampleUniform: Copy + PartialOrd {
    /// `(end - self) mod 2^width`, widened to `u128`.
    fn span_to(self, end: Self) -> u128;
    /// `(self + offset) mod 2^width`.
    fn offset(self, offset: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn span_to(self, end: Self) -> u128 {
                (end as $u).wrapping_sub(self as $u) as u128
            }

            fn offset(self, offset: u128) -> Self {
                (self as $u).wrapping_add(offset as $u) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.start.span_to(self.end);
        self.start.offset(uniform_below(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let span = start.span_to(end);
        if span == u128::MAX {
            // Only reachable for the full u128/i128 domain: every 128-bit
            // pattern is valid, so a raw draw is already uniform.
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            return start.offset(wide);
        }
        start.offset(uniform_below(rng, span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // `start + unit * span` can round up to exactly `end` when the
        // span's ulp exceeds `(1 - unit) * span`; resample to keep the
        // upper bound exclusive like the real crate (the retry fires with
        // probability ~2^-53, the fallback only for pathological ranges).
        for _ in 0..4 {
            let unit: f64 = Standard.sample(rng);
            let v = self.start + unit * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
        self.start
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the cryptographic generator the real `rand::rngs::StdRng` wraps,
    /// but statistically strong and an order of magnitude faster — all
    /// workspace uses are seeded simulation draws, never secrets.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept so callers may ask for a "small" generator; identical here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_all_residues() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let x = rng.gen_range(0..6u64);
            assert!(x < 6);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_signed_and_wide() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let x = rng.gen_range(-30i128..30);
            assert!((-30..30).contains(&x));
        }
        let lo = (0..500).map(|_| rng.gen_range(-9i128..9)).min().unwrap();
        let hi = (0..500).map(|_| rng.gen_range(-9i128..9)).max().unwrap();
        assert_eq!((lo, hi), (-9, 8));
    }

    #[test]
    fn gen_range_inclusive() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_mut_reference_chains() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            inner(rng)
        }
        fn inner(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(takes_impl(&mut rng) < 100);
    }
}
