//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no registry access, so this shim vendors the
//! surface the workspace benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. It
//! measures wall-clock medians over a short, time-boxed run and prints one
//! line per benchmark — enough to compare hot paths locally; it does not do
//! criterion's statistical regression analysis.
//!
//! Set `NAHSP_BENCH_FAST=1` to run each benchmark exactly once (smoke mode
//! for CI).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark; bounded so whole suites finish.
const TARGET: Duration = Duration::from_millis(300);
const MAX_SAMPLES: u32 = 30;

fn fast_mode() -> bool {
    std::env::var_os("NAHSP_BENCH_FAST").is_some()
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    fast: bool,
}

impl Bencher {
    fn new(fast: bool) -> Self {
        Bencher {
            samples: Vec::new(),
            fast,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up / smoke call.
        black_box(routine());
        if self.fast {
            self.samples.push(Duration::ZERO);
            return;
        }
        let start_all = Instant::now();
        while self.samples.len() < MAX_SAMPLES as usize && start_all.elapsed() < TARGET {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort();
        Some(s[s.len() / 2])
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into().id, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into().id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into().id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, mut f: F) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher::new(fast_mode());
    f(&mut b);
    match b.median() {
        Some(med) if !b.fast => {
            println!(
                "bench {full:<48} median {med:>12.3?}  ({} samples)",
                b.samples.len()
            );
        }
        Some(_) => println!("bench {full:<48} smoke ok"),
        None => println!("bench {full:<48} (no samples)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        compile_error!("criterion shim: config-style criterion_group! is not supported");
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closure() {
        std::env::set_var("NAHSP_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u32;
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                black_box(x * 2)
            })
        });
        group.finish();
        assert!(ran >= 1);
    }
}
