//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so this shim vendors the
//! surface the workspace's property tests use: the `proptest!` macro over
//! `arg in strategy` bindings, integer-range and `sample::select` /
//! `collection::vec` strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Determinism and regression persistence: every case is generated from an
//! explicit `u64` seed derived from the test name and case index, so a
//! failure report pins the exact inputs. Failing seeds are appended to
//! `proptest-regressions/<source-file-stem>.txt` (format:
//! `cc <test_name> <seed>`) and re-run *first* on subsequent executions,
//! mirroring the real crate's regression-file workflow. Shrinking is not
//! implemented — the recorded seed reproduces the original failure instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::ops::Range;
use std::path::PathBuf;

/// RNG handed to strategies; a deterministic seeded generator.
pub type TestRng = StdRng;

/// How a test case fails without panicking (the `prop_assert!` path).
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is meaningful in the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of values for one macro binding.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone + std::fmt::Debug> {
        items: Vec<T>,
    }

    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs a non-empty list");
        Select { items }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// `Vec` of values from `elem`, length uniform in `size`.
    pub struct VecStrategy<S: Strategy> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

const GOLDEN: u64 = 0x9E3779B97F4A7C15;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// `proptest-regressions/<stem>.txt` next to the crate being tested.
fn regression_path(source_file: &str) -> PathBuf {
    let stem = std::path::Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    let root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_default();
    root.join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

fn load_regression_seeds(source_file: &str, test_name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regression_path(source_file)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some("cc"), Some(name), Some(seed)) if name == test_name => {
                    seed.parse::<u64>().ok()
                }
                _ => None,
            }
        })
        .collect()
}

fn persist_failure(source_file: &str, test_name: &str, seed: u64) {
    let path = regression_path(source_file);
    let line = format!("cc {test_name} {seed}");
    if let Ok(existing) = std::fs::read_to_string(&path) {
        if existing.lines().any(|l| l.trim() == line) {
            return;
        }
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{line}");
    }
}

/// Drive one `proptest!`-generated test: regression seeds first, then
/// `cfg.cases` fresh cases. `body` returns the formatted inputs plus the
/// case outcome.
pub fn run_cases<F>(cfg: &ProptestConfig, test_name: &str, source_file: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let base = fnv1a(test_name);
    let regressions = load_regression_seeds(source_file, test_name);
    let fresh = (0..cfg.cases as u64).map(|i| base.wrapping_add(i.wrapping_mul(GOLDEN)));
    for (replay, seed) in regressions
        .iter()
        .copied()
        .map(|s| (true, s))
        .chain(fresh.map(|s| (false, s)))
    {
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        let failure: Option<String> = match &outcome {
            Ok((_, Ok(()))) => None,
            Ok((inputs, Err(e))) => Some(format!("{e} (inputs: {inputs})")),
            Err(_) => Some("panic".to_string()),
        };
        if let Some(why) = failure {
            if !replay {
                persist_failure(source_file, test_name, seed);
            }
            eprintln!(
                "proptest case failed: {test_name} seed={seed} ({why}); \
                 reproduce via `cc {test_name} {seed}` in {}",
                regression_path(source_file).display()
            );
            match outcome {
                Err(panic) => std::panic::resume_unwind(panic),
                Ok((inputs, Err(e))) => {
                    panic!("{test_name}: {e} (seed {seed}, inputs: {inputs})")
                }
                Ok((_, Ok(()))) => unreachable!(),
            }
        }
    }
}

/// Define property tests. Supported grammar (a subset of the real crate):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(0usize..4, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&cfg, stringify!($name), file!(), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                (inputs, result)
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{run_cases, Strategy};

    #[test]
    fn range_strategy_is_deterministic_per_seed() {
        use rand::SeedableRng;
        let strat = 0u64..1000;
        let mut a = crate::TestRng::seed_from_u64(5);
        let mut b = crate::TestRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn select_and_vec_strategies_respect_bounds() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(1);
        let sel = crate::sample::select(vec![4usize, 5, 6, 7]);
        let v = crate::collection::vec(0usize..4, 1..4);
        for _ in 0..100 {
            assert!((4..=7).contains(&sel.generate(&mut rng)));
            let got = v.generate(&mut rng);
            assert!((1..4).contains(&got.len()));
            assert!(got.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_runnable_tests(x in 0u64..100, y in 1usize..5) {
            prop_assert!(x < 100);
            prop_assert_eq!(y.min(4), y);
            if x == u64::MAX { return Ok(()); }
        }
    }

    // The two persistence tests below both repoint the process-global
    // CARGO_MANIFEST_DIR; serialize them so they cannot race.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn regression_seeds_replay_first() {
        let _guard = ENV_LOCK.lock().unwrap();
        // Point the regression lookup at a scratch manifest dir containing
        // a pinned seed, and check the runner replays it before fresh cases.
        let dir = std::env::temp_dir().join("nahsp_proptest_shim_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("proptest-regressions")).unwrap();
        std::fs::write(
            dir.join("proptest-regressions/fake_source.txt"),
            "# comment line ignored\ncc my_prop 777\ncc other_prop 1\n",
        )
        .unwrap();
        let old = std::env::var_os("CARGO_MANIFEST_DIR");
        std::env::set_var("CARGO_MANIFEST_DIR", &dir);
        let mut seeds_seen: Vec<u64> = Vec::new();
        run_cases(
            &ProptestConfig::with_cases(2),
            "my_prop",
            "tests/fake_source.rs",
            |rng| {
                // Recover the seed indirectly: record the first draw of the
                // pinned seed's stream for comparison.
                let _ = rng;
                seeds_seen.push(seeds_seen.len() as u64);
                (String::new(), Ok(()))
            },
        );
        match old {
            Some(v) => std::env::set_var("CARGO_MANIFEST_DIR", v),
            None => std::env::remove_var("CARGO_MANIFEST_DIR"),
        }
        // 1 regression replay (only my_prop's line) + 2 fresh cases
        assert_eq!(seeds_seen.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_seed_is_persisted_and_replayable() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("nahsp_proptest_shim_persist");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::var_os("CARGO_MANIFEST_DIR");
        std::env::set_var("CARGO_MANIFEST_DIR", &dir);
        let outcome = std::panic::catch_unwind(|| {
            run_cases(
                &ProptestConfig::with_cases(1),
                "always_fails",
                "tests/persist_me.rs",
                |_| (String::from("x = 0"), Err(TestCaseError::fail("boom"))),
            )
        });
        match old {
            Some(v) => std::env::set_var("CARGO_MANIFEST_DIR", v),
            None => std::env::remove_var("CARGO_MANIFEST_DIR"),
        }
        assert!(outcome.is_err(), "failing case must panic the test");
        let text =
            std::fs::read_to_string(dir.join("proptest-regressions/persist_me.txt")).unwrap();
        assert!(
            text.lines().any(|l| l.starts_with("cc always_fails ")),
            "failure seed not persisted: {text:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
