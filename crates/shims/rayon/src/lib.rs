//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no registry access, so this shim vendors the
//! slice of rayon the simulator kernels use — `par_chunks_mut`,
//! `par_iter_mut`, `.enumerate()`, `.for_each()`, and
//! `current_num_threads()` — backed by `std::thread::scope`. Work is split
//! into one contiguous block per hardware thread, which matches the
//! disjoint-block structure of the state-vector kernels exactly: those
//! kernels already pick chunk sizes that balance load, so block-per-thread
//! scheduling loses nothing against rayon's work stealing at the sizes the
//! simulator reaches.
//!
//! The [`pool`] module adds the persistent side of the API —
//! [`ThreadPool`]/[`ThreadPoolBuilder`] with `spawn` — backed by a sharded
//! work-stealing deque: one deque per worker, round-robin external
//! injection, owner pops from the front of its own shard, idle workers
//! steal from the back of the others. This is the scheduler seam the
//! `nahsp_core::service` serving layer runs on; the API shape mirrors real
//! rayon (`ThreadPoolBuilder::new().num_threads(n).build()`, `pool.spawn`)
//! so the shim remains a one-line swap for the real crate.

pub mod pool;

pub use pool::{ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Entry points for mutable-slice data parallelism, mirroring rayon's
/// `ParallelSliceMut` + `IntoParallelRefMutIterator` surface.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be nonzero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }

    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }

    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// Split `items` into at most `current_num_threads()` contiguous groups and
/// run `f` over every item, one scoped thread per non-first group.
fn run_grouped<I: Send, F: Fn(I) + Sync>(mut items: Vec<I>, f: F) {
    let threads = current_num_threads().min(items.len()).max(1);
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let per = items.len().div_ceil(threads);
    let mut groups: Vec<Vec<I>> = Vec::with_capacity(threads);
    while items.len() > per {
        let tail = items.split_off(items.len() - per);
        groups.push(tail);
    }
    groups.push(items);
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = groups.into_iter();
        let mine = rest.next().unwrap();
        for group in rest {
            scope.spawn(move || {
                for item in group {
                    f(item);
                }
            });
        }
        // Run one group on the calling thread instead of idling on join.
        for item in mine {
            f(item);
        }
    });
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk_size).collect();
        run_grouped(chunks, f);
    }

    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }
}

pub struct EnumerateChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let chunks: Vec<(usize, &mut [T])> =
            self.slice.chunks_mut(self.chunk_size).enumerate().collect();
        run_grouped(chunks, f);
    }
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, x)| f(x));
    }

    pub fn enumerate(self) -> EnumerateIterMut<'a, T> {
        EnumerateIterMut { slice: self.slice }
    }
}

pub struct EnumerateIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> EnumerateIterMut<'_, T> {
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let block = len.div_ceil(current_num_threads().max(1)).max(1);
        let blocks: Vec<(usize, &mut [T])> = self.slice.chunks_mut(block).enumerate().collect();
        run_grouped(blocks, |(bi, chunk)| {
            for (off, x) in chunk.iter_mut().enumerate() {
                f((bi * block + off, x));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u64; 10_000];
        data.par_chunks_mut(64).for_each(|c| {
            for x in c {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_chunks_mut_enumerate_indices_match_order() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(7).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i / 7);
        }
    }

    #[test]
    fn par_iter_mut_enumerate_writes_own_index() {
        let mut data = vec![0usize; 4096];
        data.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut empty: Vec<u8> = vec![];
        empty.par_iter_mut().for_each(|_| unreachable!());
        let mut one = vec![5u8];
        one.par_chunks_mut(8).for_each(|c| c[0] += 1);
        assert_eq!(one, vec![6]);
    }
}
