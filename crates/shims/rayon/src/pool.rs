//! Persistent worker pool over a sharded work-stealing deque.
//!
//! Mirrors the subset of real rayon's pool API a serving layer needs:
//!
//! ```
//! let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
//! let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
//! let f2 = flag.clone();
//! pool.spawn(move || f2.store(true, std::sync::atomic::Ordering::SeqCst));
//! drop(pool); // joins workers; every spawned job has run
//! assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
//! ```
//!
//! Scheduling: every worker owns one deque shard. External `spawn`s are
//! injected round-robin across shards; a worker pops from the *front* of
//! its own shard (FIFO, so a service's tickets start roughly in submission
//! order) and steals from the *back* of other shards when its own is dry —
//! the classic owner/thief split that keeps contention off the hot end.
//! Idle workers park on a condvar and are woken per-spawn; dropping the
//! pool drains every remaining job before the workers exit, so `spawn` is
//! never silently lost.
//!
//! A panicking job is contained (`catch_unwind`) and the worker moves on
//! to the next job — one poisoned request cannot take a pool thread down.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Builder matching real rayon's `ThreadPoolBuilder` surface.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Pool construction failure (the shim's construction is infallible, but
/// the real crate's `build()` returns `Result`, so the signature matches).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Worker count; 0 (the default) means hardware parallelism.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let workers = if self.num_threads == 0 {
            crate::current_num_threads()
        } else {
            self.num_threads
        }
        .max(1);
        Ok(ThreadPool::with_workers(workers))
    }
}

struct PoolShared {
    /// One work deque per worker: owner pops the front, thieves the back.
    shards: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet claimed by a worker. Incremented *before*
    /// the push so a worker that observes 0 under the idle lock can safely
    /// park (a concurrent spawner has not yet made work visible, and its
    /// notify comes after our wait begins).
    pending: AtomicUsize,
    /// Round-robin injection cursor.
    next_shard: AtomicUsize,
    shutdown: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl PoolShared {
    /// Claim one job: own shard's front first, then steal from the back of
    /// the other shards.
    fn find_job(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.shards[me].lock().expect("shard poisoned").pop_front() {
            return Some(job);
        }
        let n = self.shards.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(job) = self.shards[victim]
                .lock()
                .expect("shard poisoned")
                .pop_back()
            {
                return Some(job);
            }
        }
        None
    }
}

/// A persistent worker pool; see the module docs for the scheduling model.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    fn with_workers(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("nahsp-pool-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.handles.len()
    }

    /// Enqueue a job. Never blocks; the job runs on some pool worker.
    /// Admission control (bounded queues, typed rejection) belongs to the
    /// caller — the pool itself accepts everything handed to it.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let shard =
            self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        // pending is raised before the push (see its doc comment).
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.shards[shard]
            .lock()
            .expect("shard poisoned")
            .push_back(Box::new(job));
        // Notify under the idle lock so a worker between its pending check
        // and its wait cannot miss the wakeup.
        let _guard = self.shared.idle_lock.lock().expect("idle lock poisoned");
        self.shared.idle_cv.notify_one();
    }
}

impl Drop for ThreadPool {
    /// Graceful shutdown: workers drain every queued job, then exit.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.idle_lock.lock().expect("idle lock poisoned");
            self.shared.idle_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        if let Some(job) = shared.find_job(me) {
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            // Containment: a panicking job must not kill the worker.
            let _ = catch_unwind(AssertUnwindSafe(job));
            continue;
        }
        let guard = shared.idle_lock.lock().expect("idle lock poisoned");
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.pending.load(Ordering::SeqCst) > 0 {
            // A spawner raised pending but its push may not be visible in
            // the shard scan we just finished; rescan instead of parking.
            continue;
        }
        let _guard = shared.idle_cv.wait(guard).expect("idle wait poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_spawned_job_runs_exactly_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10_000 {
            let c = counter.clone();
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains
        assert_eq!(counter.load(Ordering::SeqCst), 10_000);
    }

    #[test]
    fn zero_threads_means_hardware_parallelism() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn idle_workers_steal_from_loaded_shards() {
        // One shard receives a long job; the round-robin injection plus
        // stealing must still let other workers drain the rest promptly.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let slow_gate = Arc::new((Mutex::new(false), Condvar::new()));
        let done = Arc::new(AtomicU64::new(0));
        {
            let gate = slow_gate.clone();
            pool.spawn(move || {
                let (lock, cv) = &*gate;
                let mut released = lock.lock().unwrap();
                while !*released {
                    released = cv.wait(released).unwrap();
                }
            });
        }
        for _ in 0..256 {
            let d = done.clone();
            pool.spawn(move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        // The blocked worker holds one shard hostage; the other three
        // workers must finish all 256 fast jobs anyway.
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) < 256 {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(30),
                "work stealing failed to drain shards around a blocked worker"
            );
            std::thread::yield_now();
        }
        let (lock, cv) = &*slow_gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        drop(pool);
    }

    #[test]
    fn steal_path_drains_pinned_shard_backlog_at_width() {
        // Width stress for the stealing path: 8 workers, one of which gets
        // pinned by a job that blocks on a gate while a deep backlog
        // accumulates — round-robin injection keeps landing every 8th
        // spawn on the pinned worker's shard, strictly behind the blocked
        // job. The other seven workers must steal that backlog from the
        // back of the hostage shard and drain all of it while the owner is
        // still blocked (asserted via the gate: the slow job provably has
        // not finished when the backlog completes).
        const WIDTH: usize = 8;
        const JOBS: u64 = 2048;
        let pool = ThreadPoolBuilder::new().num_threads(WIDTH).build().unwrap();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let slow_running = Arc::new(AtomicBool::new(false));
        let slow_done = Arc::new(AtomicBool::new(false));
        {
            let gate = gate.clone();
            let running = slow_running.clone();
            let sdone = slow_done.clone();
            pool.spawn(move || {
                running.store(true, Ordering::SeqCst);
                let (lock, cv) = &*gate;
                let mut released = lock.lock().unwrap();
                while !*released {
                    released = cv.wait(released).unwrap();
                }
                sdone.store(true, Ordering::SeqCst);
            });
        }
        // Only enqueue the backlog once the slow job occupies its worker,
        // so jobs routed to that worker's shard sit behind a blocked owner.
        let t0 = std::time::Instant::now();
        while !slow_running.load(Ordering::SeqCst) {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(10),
                "slow job never started"
            );
            std::thread::yield_now();
        }
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..JOBS {
            let d = done.clone();
            pool.spawn(move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        let t0 = std::time::Instant::now();
        while done.load(Ordering::SeqCst) < JOBS {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(30),
                "steal path stalled: {} of {JOBS} jobs drained around the pinned shard",
                done.load(Ordering::SeqCst)
            );
            std::thread::yield_now();
        }
        assert!(
            !slow_done.load(Ordering::SeqCst),
            "gate still held, so the pinned shard's backlog must have drained via steals"
        );
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        drop(pool);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.spawn(|| panic!("job panic"));
        let ok = Arc::new(AtomicBool::new(false));
        let ok2 = ok.clone();
        pool.spawn(move || ok2.store(true, Ordering::SeqCst));
        drop(pool);
        assert!(ok.load(Ordering::SeqCst), "worker died with the panic");
    }

    #[test]
    fn drop_drains_queued_jobs_before_exit() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            for _ in 0..500 {
                let c = counter.clone();
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop immediately: jobs still queued must run, not vanish.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn parked_workers_wake_on_late_spawns() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20)); // let them park
        let done = Arc::new(AtomicBool::new(false));
        let d = done.clone();
        pool.spawn(move || d.store(true, Ordering::SeqCst));
        let t0 = std::time::Instant::now();
        while !done.load(Ordering::SeqCst) {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(10),
                "parked worker never woke for a late spawn"
            );
            std::thread::yield_now();
        }
        drop(pool);
    }
}
