//! Offline drop-in subset of the `bytes` crate API.
//!
//! The build environment has no registry access, so this shim vendors the
//! slice the byte-string black-box encoding uses: `Bytes`, `BytesMut`, and
//! the big-endian `BufMut::put_*` writers. Backed by `Vec<u8>` — the
//! zero-copy refcounting of the real crate is irrelevant at the element
//! sizes (8–40 bytes) the encodings produce.

use std::ops::Deref;

/// An immutable byte string. Derefs to `&[u8]`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.0 {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// A growable byte buffer; `freeze` converts it into [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Big-endian writers, matching the real crate's `put_*` byte order.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_is_big_endian_and_freezes() {
        let mut b = BytesMut::with_capacity(12);
        b.put_u64(0x0102030405060708);
        b.put_u32(0x0A0B0C0D);
        let frozen = b.freeze();
        assert_eq!(
            &frozen[..],
            &[1, 2, 3, 4, 5, 6, 7, 8, 0x0A, 0x0B, 0x0C, 0x0D]
        );
        assert_eq!(frozen.len(), 12);
    }

    #[test]
    fn bytes_deref_supports_slice_apis() {
        let b = Bytes::copy_from_slice(&[9, 8, 7]);
        let arr: [u8; 3] = b[..].try_into().unwrap();
        assert_eq!(arr, [9, 8, 7]);
    }
}
