//! Façade overhead — the same Corollary 12 workload through
//! `HspSolver::solve` (classification + dispatch + verification) vs the
//! direct `try_hsp_small_commutator` call, plus classification alone and
//! batch fan-out. Gives future BENCH_*.json a dispatch-cost baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_abelian::AbelianHsp;
use nahsp_bench::extraspecial_instance;
use nahsp_core::small_commutator::try_hsp_small_commutator;
use nahsp_core::solver::{HspInstance, HspSolver};
use nahsp_groups::extraspecial::Extraspecial;
use rand::SeedableRng;

fn bench_direct_vs_facade(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/direct_vs_facade");
    group.sample_size(10);
    for p in [3u64, 5, 7] {
        group.bench_with_input(BenchmarkId::new("direct", p), &p, |b, &p| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            b.iter(|| {
                let (g, oracle) = extraspecial_instance(p);
                try_hsp_small_commutator(&g, &oracle, 1 << 16, &AbelianHsp::default(), &mut rng)
                    .expect("thm 11")
                    .h_generators
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("facade", p), &p, |b, &p| {
            let solver = HspSolver::builder().seed(8).build();
            b.iter(|| {
                let (g, oracle) = extraspecial_instance(p);
                let instance = HspInstance::new(g, oracle);
                solver.solve(&instance).expect("solve").generators.len()
            })
        });
    }
    group.finish();
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/classify");
    group.sample_size(10);
    let (g, oracle) = extraspecial_instance(5);
    let instance = HspInstance::new(g, oracle);
    let solver = HspSolver::new();
    group.bench_function("extraspecial", |b| {
        b.iter(|| solver.classify(&instance).expect("classifiable"))
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/batch");
    group.sample_size(10);
    for width in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            let instances: Vec<HspInstance<Extraspecial, _>> = (0..8)
                .map(|_| {
                    let (g, oracle) = extraspecial_instance(5);
                    HspInstance::new(g, oracle)
                })
                .collect();
            let solver = HspSolver::builder().seed(8).parallelism(width).build();
            b.iter(|| {
                solver
                    .solve_batch(&instances)
                    .into_iter()
                    .filter(|r| r.is_ok())
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_direct_vs_facade, bench_classify, bench_batch);
criterion_main!(benches);
