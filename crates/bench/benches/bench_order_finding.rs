//! E2 — order finding: simulated Shor circuit vs exact emulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_abelian::OrderFinder;
use nahsp_groups::perm::{Perm, PermGroup};
use rand::SeedableRng;

fn mult_perm(n: u64, x: u64) -> (PermGroup, Perm) {
    let images: Vec<u32> = (0..n as u32).map(|y| ((y as u64 * x) % n) as u32).collect();
    let p = Perm::from_images(images);
    (PermGroup::new(n as usize, vec![p.clone()]), p)
}

fn bench_simulated(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_finding/simulated");
    group.sample_size(10);
    for (n, x) in [(15u64, 2u64), (21, 2), (35, 2)] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let (g, p) = mult_perm(n, x);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            b.iter(|| OrderFinder::Simulated { max_order: 16 }.find(&g, &p, &mut rng))
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_finding/exact");
    for (n, x) in [(15u64, 2u64), (4095, 2), (65535, 2)] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let (g, p) = mult_perm(n, x);
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            b.iter(|| OrderFinder::Exact.find(&g, &p, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulated, bench_exact);
criterion_main!(benches);
