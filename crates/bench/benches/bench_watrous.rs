//! E9 — Theorem 10 / Lemma 9: quotient-order finding through coset states.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_core::lemma9::Lemma9Backend;
use nahsp_core::watrous::{quotient_order, CosetStates};
use nahsp_groups::perm::{Perm, PermGroup};
use rand::SeedableRng;

fn bench_quotient_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("watrous/quotient_order");
    group.sample_size(10);
    for backend in ["simulator", "ideal"] {
        group.bench_with_input(BenchmarkId::from_parameter(backend), &backend, |b, &be| {
            let s4 = PermGroup::symmetric(4);
            let v4 = vec![
                Perm::from_cycles(4, &[&[0, 1], &[2, 3]]),
                Perm::from_cycles(4, &[&[0, 2], &[1, 3]]),
            ];
            let c3 = Perm::from_cycles(4, &[&[0, 1, 2]]);
            let backend = if be == "ideal" {
                Lemma9Backend::Ideal
            } else {
                Lemma9Backend::Simulator
            };
            let mut rng = rand::rngs::StdRng::seed_from_u64(12);
            b.iter(|| {
                let states = CosetStates::new(s4.clone(), &v4, 100, 0.0);
                quotient_order(&states, &c3, backend, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_epsilon_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("watrous/epsilon");
    group.sample_size(10);
    for eps_label in [0usize, 5, 10] {
        let eps = eps_label as f64 / 100.0;
        group.bench_with_input(BenchmarkId::from_parameter(eps_label), &eps, |b, &eps| {
            let s4 = PermGroup::symmetric(4);
            let v4 = vec![
                Perm::from_cycles(4, &[&[0, 1], &[2, 3]]),
                Perm::from_cycles(4, &[&[0, 2], &[1, 3]]),
            ];
            let c3 = Perm::from_cycles(4, &[&[0, 1, 2]]);
            let mut rng = rand::rngs::StdRng::seed_from_u64(13);
            b.iter(|| {
                let states = CosetStates::new(s4.clone(), &v4, 100, eps);
                quotient_order(&states, &c3, Lemma9Backend::Simulator, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quotient_order, bench_epsilon_noise);
criterion_main!(benches);
