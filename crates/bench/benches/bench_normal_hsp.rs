//! E4/E5 — Theorem 8 hidden normal subgroups: solvable groups and
//! permutation groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_abelian::AbelianHsp;
use nahsp_bench::perm_instance;
use nahsp_core::normal_hsp::{
    try_hidden_normal_subgroup, try_hidden_normal_subgroup_perm, QuotientEngine,
};
use nahsp_core::oracle::CosetTableOracle;
use nahsp_groups::matgf::Gf2Mat;
use nahsp_groups::semidirect::Semidirect;
use rand::SeedableRng;

fn bench_solvable(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_hsp/solvable");
    group.sample_size(10);
    for (k, m, coeffs) in [(3usize, 7u64, 0b011u64), (4, 15, 0b0011), (5, 31, 0b00101)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{k}x{m}")),
            &k,
            |b, _| {
                let g = Semidirect::new(k, m, Gf2Mat::companion(k, coeffs));
                let n_gens = g.normal_subgroup_gens();
                let mut rng = rand::rngs::StdRng::seed_from_u64(6);
                b.iter(|| {
                    let oracle = CosetTableOracle::new(g.clone(), &n_gens, 1 << 16);
                    try_hidden_normal_subgroup(
                        &g,
                        &oracle,
                        QuotientEngine::Auto { limit: 1 << 10 },
                        1 << 16,
                        &AbelianHsp::default(),
                        &mut rng,
                    )
                    .expect("thm 8")
                    .1
                    .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_hsp/permutation");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            b.iter(|| {
                let (sn, oracle) = perm_instance(n);
                try_hidden_normal_subgroup_perm(
                    &sn,
                    &oracle,
                    QuotientEngine::Auto { limit: 100 },
                    &AbelianHsp::default(),
                    &mut rng,
                )
                .expect("thm 8")
                .1
                .order()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvable, bench_permutation);
criterion_main!(benches);
