//! E1 — Abelian HSP scaling over Z2^k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_abelian::hsp::{AbelianHsp, Backend};
use nahsp_bench::abelian_instance;
use rand::SeedableRng;

fn bench_ideal_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("abelian_hsp/ideal");
    for k in [8usize, 16, 24, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let (_, oracle) = abelian_instance(k, &mut rng);
            let solver = AbelianHsp::new(Backend::Ideal);
            b.iter(|| solver.solve(&oracle, &mut rng).subgroup.order())
        });
    }
    group.finish();
}

fn bench_simulator_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("abelian_hsp/simulator_coset");
    group.sample_size(10);
    for k in [6usize, 8, 10, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            let (_, oracle) = abelian_instance(k, &mut rng);
            let solver = AbelianHsp::new(Backend::SimulatorCoset);
            b.iter(|| solver.solve(&oracle, &mut rng).subgroup.order())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ideal_backend, bench_simulator_backend);
criterion_main!(benches);
