//! E10 — simulator substrate: QFT implementations and gate kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_qsim::gates::hadamard;
use nahsp_qsim::layout::Layout;
use nahsp_qsim::qft::{approx_qft_binary_register, dft_site, qft_binary_register};
use nahsp_qsim::state::State;

fn bench_dense_dft(c: &mut Criterion) {
    let mut group = c.benchmark_group("qft/dense_dft");
    for t in [6usize, 8, 10] {
        let d = 1usize << t;
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| {
                let mut s = State::basis_index(Layout::new(vec![d]), 1);
                dft_site(&mut s, 0, false);
                s.probability(0)
            })
        });
    }
    group.finish();
}

fn bench_circuit_qft(c: &mut Criterion) {
    let mut group = c.benchmark_group("qft/qubit_circuit");
    for t in [6usize, 8, 10, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let sites: Vec<usize> = (0..t).collect();
            b.iter(|| {
                let mut s = State::basis_index(Layout::qubits(t), 1);
                qft_binary_register(&mut s, &sites, false);
                s.probability(0)
            })
        });
    }
    group.finish();
}

fn bench_approx_qft(c: &mut Criterion) {
    let mut group = c.benchmark_group("qft/approx_cutoff");
    let t = 12usize;
    let sites: Vec<usize> = (0..t).collect();
    for cutoff in [3usize, 6, 12] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cutoff),
            &cutoff,
            |b, &cutoff| {
                b.iter(|| {
                    let mut s = State::basis_index(Layout::qubits(t), 677);
                    approx_qft_binary_register(&mut s, &sites, false, cutoff);
                    s.probability(0)
                })
            },
        );
    }
    group.finish();
}

fn bench_hadamard_wall(c: &mut Criterion) {
    let mut group = c.benchmark_group("gates/hadamard_wall");
    for t in [10usize, 14, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let mut s = State::zero(Layout::qubits(t));
                for q in 0..t {
                    hadamard(&mut s, q);
                }
                s.probability(0)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_dft,
    bench_circuit_qft,
    bench_approx_qft,
    bench_hadamard_wall
);
criterion_main!(benches);
