//! E3 — Theorem 6 constructive membership in Abelian subgroups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_abelian::hsp::{AbelianHsp, Backend};
use nahsp_abelian::OrderFinder;
use nahsp_core::membership::abelian_membership;
use nahsp_groups::perm::{Perm, PermGroup};
use nahsp_groups::Group;
use rand::SeedableRng;

fn bench_membership_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership/rank");
    group.sample_size(10);
    let s9 = PermGroup::symmetric(9);
    let cycles: Vec<Perm> = vec![
        Perm::from_cycles(9, &[&[0, 1, 2]]),
        Perm::from_cycles(9, &[&[3, 4, 5, 6]]),
        Perm::from_cycles(9, &[&[7, 8]]),
    ];
    for r in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let hs: Vec<Perm> = cycles[..r].to_vec();
            let mut target = s9.identity();
            for h in &hs {
                target = s9.multiply(&target, h);
            }
            let hsp = AbelianHsp::new(Backend::SimulatorCoset);
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            b.iter(|| {
                abelian_membership(&s9, &hs, &target, &hsp, &OrderFinder::Exact, &mut rng)
                    .expect("member")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_membership_rank);
criterion_main!(benches);
