//! E7/E8 — Theorem 13: general transversal vs cyclic Sylow set, simulator
//! and ideal backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_abelian::hsp::{AbelianHsp, Backend};
use nahsp_bench::{semidirect_instance, wreath_instance, wreath_instance_structural};
use nahsp_core::ea2::{try_hsp_ea2_cyclic, try_hsp_ea2_general};
use rand::SeedableRng;

fn bench_general_transversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("ea2/general");
    group.sample_size(10);
    for (k, m, coeffs) in [(3usize, 7u64, 0b011u64), (4, 15, 0b0011)] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let hsp = AbelianHsp::new(Backend::SimulatorCoset);
            b.iter(|| {
                let (g, oracle, coords) = semidirect_instance(k, m, coeffs);
                try_hsp_ea2_general(&g, &oracle, &coords, &hsp, None, 1 << 10, &mut rng)
                    .expect("thm 13")
                    .h_generators
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_cyclic_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("ea2/cyclic_simulator");
    group.sample_size(10);
    for half in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(2 * half), &half, |b, &half| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(10);
            let hsp = AbelianHsp::new(Backend::SimulatorCoset);
            b.iter(|| {
                let (g, oracle, coords, _) = wreath_instance(half);
                try_hsp_ea2_cyclic(&g, &oracle, &coords, &hsp, None, &mut rng)
                    .expect("thm 13")
                    .h_generators
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_cyclic_ideal(c: &mut Criterion) {
    let mut group = c.benchmark_group("ea2/cyclic_ideal");
    for half in [8usize, 16, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(2 * half), &half, |b, &half| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            let hsp = AbelianHsp::new(Backend::Ideal);
            b.iter(|| {
                let (g, oracle, coords, truth, _) = wreath_instance_structural(half);
                try_hsp_ea2_cyclic(&g, &oracle, &coords, &hsp, Some(&truth), &mut rng)
                    .expect("thm 13")
                    .h_generators
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_general_transversal,
    bench_cyclic_simulator,
    bench_cyclic_ideal
);
criterion_main!(benches);
