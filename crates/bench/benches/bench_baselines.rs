//! A2 + crossover — classical baselines vs the paper's algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_bench::extraspecial_instance;
use nahsp_core::baseline::{birthday_collision, ettinger_hoyer_dihedral, try_exhaustive_scan};
use nahsp_groups::closure::enumerate_subgroup;
use nahsp_groups::dihedral::Dihedral;
use nahsp_groups::Group;
use rand::SeedableRng;

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/exhaustive");
    group.sample_size(10);
    for p in [3u64, 5, 7, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let (g, oracle) = extraspecial_instance(p);
                try_exhaustive_scan(&g, &oracle, 1 << 16).expect("scan").1
            })
        });
    }
    group.finish();
}

fn bench_birthday(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/birthday");
    group.sample_size(10);
    for p in [3u64, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(14);
            b.iter(|| {
                let (g, oracle) = extraspecial_instance(p);
                let all = enumerate_subgroup(&g, &g.generators(), 1 << 16).unwrap();
                birthday_collision(&g, &oracle, &all, 1 << 22, &mut rng).queries
            })
        });
    }
    group.finish();
}

fn bench_ettinger_hoyer(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/ettinger_hoyer");
    group.sample_size(10);
    for bits in [8u32, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let n = 1u64 << bits;
            let g = Dihedral::new(n);
            let d = n / 3;
            let mut rng = rand::rngs::StdRng::seed_from_u64(15);
            b.iter(|| {
                ettinger_hoyer_dihedral(
                    &g,
                    d,
                    (12 * bits) as usize,
                    |c| c == d,
                    &nahsp_qsim::GateCounter::new(),
                    &mut rng,
                )
                .d
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exhaustive,
    bench_birthday,
    bench_ettinger_hoyer
);
criterion_main!(benches);
