//! A1 — backend ablation: cost of the three Fourier-sampling paths on the
//! same instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_abelian::dual::perp;
use nahsp_abelian::hsp::{
    fourier_sample_coset, fourier_sample_full, fourier_sample_sparse, SubgroupOracle,
};
use nahsp_abelian::lattice::SubgroupLattice;
use nahsp_groups::AbelianProduct;
use nahsp_qsim::GateCounter;
use rand::SeedableRng;

fn bench_sampling_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("backends/sample");
    let moduli = vec![4u64, 4];
    let hgens = vec![vec![2u64, 0], vec![0u64, 2]];
    let a = AbelianProduct::new(moduli);
    let oracle = SubgroupOracle::new(a.clone(), &hgens);
    let truth = SubgroupLattice::from_generators(&a, &perp(&a, &hgens));

    let gates = GateCounter::new();
    group.bench_function(BenchmarkId::from_parameter("full"), |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        b.iter(|| fourier_sample_full(&oracle, &gates, &mut rng))
    });
    group.bench_function(BenchmarkId::from_parameter("coset"), |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        b.iter(|| fourier_sample_coset(&oracle, &gates, &mut rng))
    });
    group.bench_function(BenchmarkId::from_parameter("sparse"), |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        b.iter(|| fourier_sample_sparse(&oracle, &gates, &mut rng).expect("sparse round"))
    });
    group.bench_function(BenchmarkId::from_parameter("ideal"), |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        b.iter(|| truth.random_element(&mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_sampling_paths);
criterion_main!(benches);
