//! E6 — Theorem 11 / Corollary 12: extraspecial p-group sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nahsp_abelian::AbelianHsp;
use nahsp_bench::extraspecial_instance;
use nahsp_core::small_commutator::try_hsp_small_commutator;
use rand::SeedableRng;

fn bench_extraspecial(c: &mut Criterion) {
    let mut group = c.benchmark_group("small_commutator/extraspecial");
    group.sample_size(10);
    for p in [3u64, 5, 7, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            b.iter(|| {
                let (g, oracle) = extraspecial_instance(p);
                try_hsp_small_commutator(&g, &oracle, 1 << 16, &AbelianHsp::default(), &mut rng)
                    .expect("thm 11")
                    .h_generators
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extraspecial);
criterion_main!(benches);
