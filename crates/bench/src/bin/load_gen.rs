//! Service load generator: drives ~1M mixed small instances — all five
//! strategy families across several backends — through
//! `nahsp_core::service::SolverService` and records throughput plus
//! p50/p95/p99 submission-to-completion latency into the single-line
//! `"service"` entry of `BENCH_solver.json`.
//!
//! Run with `cargo run --release -p nahsp-bench --bin load-gen`.
//!
//! Flags: `--smoke` (20k instances + regression gate against the committed
//! baseline's service line), `--instances N`, `--workers W` (0 =
//! hardware), `--queue C` (admission bound).
//!
//! Env vars (matching the `experiments` bin): `BENCH_SOLVER_OUT` is the
//! JSON document to splice the service line into (default
//! `BENCH_solver.json`), `BENCH_SOLVER_BASELINE` the committed document
//! the smoke gate compares against.

use nahsp_abelian::Backend;
use nahsp_bench::{extract_service_line, json_number_field, percentile, splice_service_line};
use nahsp_core::oracle::CosetTableOracle;
use nahsp_core::service::{SolverService, SubmitOptions, Ticket};
use nahsp_core::solver::{HspInstance, HspSolver, Strategy};
use nahsp_groups::dihedral::Dihedral;
use nahsp_groups::extraspecial::Extraspecial;
use nahsp_groups::perm::PermGroup;
use nahsp_groups::semidirect::Semidirect;
use nahsp_groups::{AbelianProduct, CyclicGroup, Group};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deferred completion for one ticket, type-erased across the instance
/// families: returns (solved ok, submission-to-completion latency).
type Waiter = Box<dyn FnOnce() -> (bool, Duration) + Send>;

fn waiter<G>(ticket: Ticket<G>) -> Waiter
where
    G: Group + 'static,
    G::Elem: 'static,
{
    Box::new(move || {
        let ok = ticket.wait().is_ok();
        (ok, ticket.latency().expect("finished ticket has a latency"))
    })
}

/// The workload mix, weighted per 1000 submissions. Small instances on
/// purpose: the paper's solves are each cheap once classified, so the
/// serving bottleneck this bin measures is many mixed solves, not one big
/// simulation. Each family keeps a pool of independently constructed
/// oracles so their label-interner locks don't serialize the workers.
struct Mix {
    /// 400‰ — `Z₂⁶` Simon instances with ground truth: `Strategy::Auto`
    /// routes them onto the stabilizer tableau.
    stabilizer: Vec<Arc<HspInstance<AbelianProduct, CosetTableOracle<AbelianProduct>>>>,
    /// 300‰ — `Z₆₄` cyclic instances on the dense coset simulator.
    dense: Vec<Arc<HspInstance<CyclicGroup, CosetTableOracle<CyclicGroup>>>>,
    /// 100‰ — `Z₄³` instances forced onto the sparse backend per request.
    sparse: Vec<Arc<HspInstance<AbelianProduct, CosetTableOracle<AbelianProduct>>>>,
    /// 100‰ — classical exhaustive scan over `Z₃₂`.
    scan: Vec<Arc<HspInstance<CyclicGroup, CosetTableOracle<CyclicGroup>>>>,
    /// 50‰ — classical birthday collision over `Z₃₂`.
    birthday: Vec<Arc<HspInstance<CyclicGroup, CosetTableOracle<CyclicGroup>>>>,
    /// 20‰ — Corollary 12 on the Heisenberg group of order 27.
    extraspecial: Vec<Arc<HspInstance<Extraspecial, CosetTableOracle<Extraspecial>>>>,
    /// 15‰ — Theorem 13 (cyclic) on `Z₂² ≀ Z₂`.
    wreath: Vec<Arc<HspInstance<Semidirect, CosetTableOracle<Semidirect>>>>,
    /// 10‰ — Theorem 13 (general) on `Z₂³ ⋊ Z₇`.
    semidirect: Vec<Arc<HspInstance<Semidirect, CosetTableOracle<Semidirect>>>>,
    /// 4‰ — Theorem 8 on `A₄ ⊴ S₄` (Schreier–Sims fast path).
    perm: Vec<Arc<HspInstance<PermGroup, nahsp_core::oracle::PermCosetOracle>>>,
    /// 1‰ — Ettinger–Høyer baseline on `D₁₆`.
    dihedral: Vec<Arc<HspInstance<Dihedral, CosetTableOracle<Dihedral>>>>,
}

#[derive(Clone, Copy)]
enum Family {
    Stabilizer,
    Dense,
    Sparse,
    Scan,
    Birthday,
    Extraspecial,
    Wreath,
    Semidirect,
    Perm,
    Dihedral,
}

fn schedule() -> Vec<Family> {
    let weights: [(Family, usize); 10] = [
        (Family::Stabilizer, 400),
        (Family::Dense, 300),
        (Family::Sparse, 100),
        (Family::Scan, 100),
        (Family::Birthday, 50),
        (Family::Extraspecial, 20),
        (Family::Wreath, 15),
        (Family::Semidirect, 10),
        (Family::Perm, 4),
        (Family::Dihedral, 1),
    ];
    let mut plan = Vec::with_capacity(1000);
    for (family, weight) in weights {
        plan.extend(std::iter::repeat_n(family, weight));
    }
    assert_eq!(plan.len(), 1000);
    plan
}

fn build_mix() -> Mix {
    let stabilizer = (0..48)
        .map(|v| {
            // Rank-3 hidden subgroups of Z2^6, three rotated pairings.
            let g = AbelianProduct::new(vec![2u64; 6]);
            let h: Vec<Vec<u64>> = (0..3)
                .map(|i| {
                    let mut e = vec![0u64; 6];
                    e[(i + v) % 6] = 1;
                    e[(5 - i + v) % 6] = 1;
                    if e.iter().all(|&b| b == 0) {
                        e[(i + v) % 6] = 1;
                    }
                    e
                })
                .collect();
            Arc::new(HspInstance::with_coset_oracle(g, &h, 128).expect("Z2^6 oracle"))
        })
        .collect();
    let dense = (0..64)
        .map(|v| {
            let g = CyclicGroup::new(64);
            let d = [2u64, 4, 8, 16][v % 4];
            Arc::new(HspInstance::with_coset_oracle(g, &[d], 80).expect("Z64 oracle"))
        })
        .collect();
    let sparse = (0..32)
        .map(|v| {
            let g = AbelianProduct::new(vec![4u64; 3]);
            let h: Vec<Vec<u64>> = match v % 3 {
                0 => vec![vec![1, 0, 0], vec![0, 1, 0]],
                1 => vec![vec![0, 1, 0], vec![0, 0, 1]],
                _ => vec![vec![1, 0, 0], vec![0, 0, 2]],
            };
            Arc::new(HspInstance::with_coset_oracle(g, &h, 80).expect("Z4^3 oracle"))
        })
        .collect();
    let cyclic32 = || {
        let g = CyclicGroup::new(32);
        Arc::new(HspInstance::with_coset_oracle(g, &[4u64], 40).expect("Z32 oracle"))
    };
    let scan = (0..32).map(|_| cyclic32()).collect();
    let birthday = (0..32).map(|_| cyclic32()).collect();
    let extraspecial = (0..16)
        .map(|_| {
            let (g, oracle) = nahsp_bench::extraspecial_instance(3);
            Arc::new(HspInstance::new(g, oracle))
        })
        .collect();
    let wreath = (0..16)
        .map(|_| {
            let (g, oracle, _coords, _h) = nahsp_bench::wreath_instance(2);
            Arc::new(HspInstance::new(g, oracle))
        })
        .collect();
    let semidirect = (0..16)
        .map(|_| {
            let (g, oracle, _coords) = nahsp_bench::semidirect_instance(3, 7, 0b011);
            Arc::new(HspInstance::new(g, oracle))
        })
        .collect();
    let perm = (0..8)
        .map(|_| {
            let (s4, oracle) = nahsp_bench::perm_instance(4);
            Arc::new(HspInstance::new(s4, oracle).promise_normal())
        })
        .collect();
    let dihedral = (0..4)
        .map(|_| {
            let g = Dihedral::new(16);
            Arc::new(HspInstance::with_coset_oracle(g, &[(3u64, true)], 40).expect("D16 oracle"))
        })
        .collect();
    Mix {
        stabilizer,
        dense,
        sparse,
        scan,
        birthday,
        extraspecial,
        wreath,
        semidirect,
        perm,
        dihedral,
    }
}

/// Submit the `i`-th request of its family; `submit_blocking` provides the
/// backpressure (the admission queue is the only bound).
fn submit(service: &SolverService, mix: &Mix, family: Family, i: usize) -> Waiter {
    fn go<G, F>(
        service: &SolverService,
        pool: &[Arc<HspInstance<G, F>>],
        i: usize,
        opts: SubmitOptions,
    ) -> Waiter
    where
        G: Group + 'static,
        G::Elem: 'static,
        F: nahsp_core::oracle::HidingFunction<G> + Send + Sync + 'static,
    {
        let instance = pool[i % pool.len()].clone();
        waiter(
            service
                .submit_blocking(instance, opts)
                .expect("service accepts while running"),
        )
    }
    let opts = SubmitOptions::new();
    match family {
        Family::Stabilizer => go(service, &mix.stabilizer, i, opts),
        Family::Dense => go(service, &mix.dense, i, opts),
        Family::Sparse => go(
            service,
            &mix.sparse,
            i,
            opts.backend(Backend::SimulatorSparse),
        ),
        Family::Scan => go(
            service,
            &mix.scan,
            i,
            opts.strategy(Strategy::ExhaustiveScan),
        ),
        Family::Birthday => go(
            service,
            &mix.birthday,
            i,
            opts.strategy(Strategy::BirthdayCollision),
        ),
        Family::Extraspecial => go(
            service,
            &mix.extraspecial,
            i,
            opts.strategy(Strategy::SmallCommutator),
        ),
        Family::Wreath => go(service, &mix.wreath, i, opts.strategy(Strategy::Ea2Cyclic)),
        Family::Semidirect => go(
            service,
            &mix.semidirect,
            i,
            opts.strategy(Strategy::Ea2General),
        ),
        Family::Perm => go(service, &mix.perm, i, opts),
        Family::Dihedral => go(
            service,
            &mix.dihedral,
            i,
            opts.strategy(Strategy::EttingerHoyerDihedral),
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let instances = flag("--instances").unwrap_or(if smoke { 20_000 } else { 1_000_000 });
    let workers = flag("--workers").unwrap_or(0);
    let queue = flag("--queue").unwrap_or(1024);
    let mode = if smoke { "smoke" } else { "full" };

    let out = std::env::var("BENCH_SOLVER_OUT").unwrap_or_else(|_| "BENCH_solver.json".into());
    let baseline_path =
        std::env::var("BENCH_SOLVER_BASELINE").unwrap_or_else(|_| "BENCH_solver.json".into());
    // Read the committed baseline before the output path (possibly the
    // same file) is rewritten below.
    let baseline_service = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|doc| extract_service_line(&doc));

    let service = SolverService::builder()
        .solver(HspSolver::builder().seed(20_000).build())
        .workers(workers)
        .queue_capacity(queue)
        .build();
    let plan = schedule();
    let mix = build_mix();
    println!(
        "load-gen ({mode}): {instances} instances, {} workers, queue capacity {queue}",
        service.workers()
    );

    let window = (2 * queue).max(128);
    let mut pending: VecDeque<Waiter> = VecDeque::new();
    let mut latencies_us: Vec<f64> = Vec::with_capacity(instances);
    let mut ok = 0u64;
    let mut errors = 0u64;
    let t0 = Instant::now();
    let finish = |w: Waiter, latencies_us: &mut Vec<f64>, ok: &mut u64, errors: &mut u64| {
        let (solved, latency) = w();
        if solved {
            *ok += 1;
        } else {
            *errors += 1;
        }
        latencies_us.push(latency.as_secs_f64() * 1e6);
    };
    for i in 0..instances {
        pending.push_back(submit(&service, &mix, plan[i % plan.len()], i));
        if pending.len() >= window {
            let w = pending.pop_front().expect("nonempty window");
            finish(w, &mut latencies_us, &mut ok, &mut errors);
        }
        if i > 0 && i.is_multiple_of(100_000) {
            println!(
                "  submitted {i}/{instances}, completed {}, elapsed {:.1}s",
                latencies_us.len(),
                t0.elapsed().as_secs_f64()
            );
        }
    }
    for w in std::mem::take(&mut pending) {
        finish(w, &mut latencies_us, &mut ok, &mut errors);
    }
    let wall = t0.elapsed();
    service.stop();
    service.join();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let throughput = ok as f64 / wall.as_secs_f64();
    let p50 = percentile(&latencies_us, 50.0);
    let p95 = percentile(&latencies_us, 95.0);
    let p99 = percentile(&latencies_us, 99.0);
    println!(
        "load-gen ({mode}): {ok} solved, {errors} errors in {:.1}s = {throughput:.0}/s; \
         latency p50 {p50:.1}µs p95 {p95:.1}µs p99 {p99:.1}µs",
        wall.as_secs_f64()
    );

    let service_object = format!(
        "{{ \"mode\": \"{mode}\", \"instances\": {instances}, \"workers\": {}, \
         \"queue\": {queue}, \"errors\": {errors}, \"throughput_per_s\": {throughput:.1}, \
         \"p50_us\": {p50:.1}, \"p95_us\": {p95:.1}, \"p99_us\": {p99:.1} }}",
        service.workers()
    );
    let doc = std::fs::read_to_string(&out).unwrap_or_else(|_| "{\n}\n".into());
    std::fs::write(&out, splice_service_line(&doc, &service_object)).expect("write bench output");
    println!("load-gen: spliced service line into {out}");

    // Solves are Las Vegas with generous caps: a failure is noise-level
    // rare. More than 0.1% typed errors means something is actually broken.
    if errors * 1000 > instances as u64 {
        println!("load-gen: error rate above 0.1%");
        std::process::exit(1);
    }

    // Smoke mode doubles as CI's service-trajectory gate, mirroring the
    // per-strategy gate in `experiments bench-solver --smoke`: the mix is
    // identical to full mode (only the instance count shrinks), so an
    // honest build stays near the committed figures; a halved throughput
    // or doubled p95 is a real serving-layer regression.
    if smoke {
        match baseline_service {
            None => println!(
                "load-gen --smoke: no committed service line in {baseline_path}; skipping gate"
            ),
            Some(base) => {
                let base_tp = json_number_field(&base, "throughput_per_s").unwrap_or(0.0);
                let base_p95 = json_number_field(&base, "p95_us").unwrap_or(f64::INFINITY);
                println!(
                    "regression gate vs {baseline_path}: throughput {throughput:.0}/s vs \
                     committed {base_tp:.0}/s, p95 {p95:.1}µs vs committed {base_p95:.1}µs"
                );
                let mut regressed = false;
                if base_tp > 0.0 && throughput < base_tp / 2.0 {
                    println!("load-gen --smoke: throughput REGRESSED (<0.5x committed)");
                    regressed = true;
                }
                if base_p95.is_finite() && p95 > 2.0 * base_p95 {
                    println!("load-gen --smoke: p95 latency REGRESSED (>2x committed)");
                    regressed = true;
                }
                if regressed {
                    std::process::exit(1);
                }
                println!("load-gen --smoke: within gate");
            }
        }
    }
}
