//! Regenerates every experiment table of EXPERIMENTS.md (E1–E10, A1–A2).
//!
//! Run with `cargo run --release -p nahsp-bench --bin experiments`.
//! Pass experiment ids (e.g. `e1 e8 a2`) to run a subset.
//!
//! The extra id `bench-solver` (never part of the default set) runs the
//! solver façade across every strategy and writes machine-readable medians
//! to `BENCH_solver.json` (override with the `BENCH_SOLVER_OUT` env var);
//! `--smoke` shrinks the workloads for CI.

use nahsp_abelian::dual::perp;
use nahsp_abelian::hsp::{
    fourier_sample_coset, fourier_sample_full, AbelianHsp, Backend, HidingOracle, SubgroupOracle,
};
use nahsp_abelian::lattice::SubgroupLattice;
use nahsp_abelian::OrderFinder;
use nahsp_bench::*;
use nahsp_core::baseline::{birthday_collision, ettinger_hoyer_dihedral, try_exhaustive_scan};
use nahsp_core::lemma9::{solve_state_hsp, Lemma9Backend, PerturbedOracle};
use nahsp_core::membership::abelian_membership;
use nahsp_core::noise::{NoiseConfig, NoisyOracle};
use nahsp_core::oracle::CosetTableOracle;
use nahsp_core::solver::{HspInstance, HspSolver, Strategy, StrategyDetail};
use nahsp_core::watrous::{quotient_order, CosetStates};
use nahsp_groups::closure::enumerate_subgroup;
use nahsp_groups::dihedral::Dihedral;
use nahsp_groups::perm::{Perm, PermGroup};
use nahsp_groups::{AbelianProduct, CyclicGroup, Group};
use nahsp_qsim::layout::Layout;
use nahsp_qsim::measure::total_variation;
use nahsp_qsim::qft::{approx_qft_binary_register, dft_site, qft_binary_register};
use nahsp_qsim::state::State;
use nahsp_qsim::GateCounter;
use rand::{Rng, SeedableRng};
use std::time::Instant;

type Rng64 = rand::rngs::StdRng;

fn micros<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e6)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let args: Vec<String> = raw.into_iter().filter(|a| !a.starts_with("--")).collect();
    let want = |id: &str| {
        args.iter().any(|a| a == id) || (args.is_empty() && id != "bench-solver")
        // bench-solver is opt-in
    };

    if want("e1") {
        e1_abelian_hsp();
    }
    if want("e2") {
        e2_order_finding();
    }
    if want("e3") {
        e3_membership();
    }
    if want("e4") {
        e4_normal_hsp_solvable();
    }
    if want("e5") {
        e5_normal_hsp_permutation();
    }
    if want("e6") {
        e6_small_commutator();
    }
    if want("e7") {
        e7_ea2_general();
    }
    if want("e8") {
        e8_ea2_cyclic();
    }
    if want("e9") {
        e9_epsilon_robustness();
    }
    if want("e10") {
        e10_qft();
    }
    if want("a1") {
        a1_backend_agreement();
    }
    if want("a2") {
        a2_ettinger_hoyer();
    }
    if want("bench-solver") {
        bench_solver_json(smoke);
    }
}

// ------------------------------------------------------------------------
// bench-solver: per-strategy façade medians, machine-readable.
// ------------------------------------------------------------------------

fn median_u64(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn median_f64(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN walls"));
    v[v.len() / 2]
}

struct StrategyFigures {
    strategy: &'static str,
    instance: String,
    wall_us: f64,
    oracle_queries: u64,
    gates: u64,
}

/// Run one instance `reps` times (distinct solver seeds) and reduce to
/// medians. The strategy is pinned explicitly so the figures stay
/// comparable across code changes to the Auto classifier.
fn solver_figures<G, F>(
    strategy: Strategy,
    instance: &HspInstance<G, F>,
    label: String,
    reps: usize,
) -> StrategyFigures
where
    G: Group + 'static,
    G::Elem: 'static,
    F: nahsp_core::oracle::HidingFunction<G>,
{
    solver_figures_with(
        strategy,
        Backend::Auto,
        strategy.name(),
        instance,
        label,
        reps,
    )
}

/// [`solver_figures`] with a pinned sampling backend and its own row key —
/// used for the Stabilizer line, which runs `Strategy::Abelian` under a
/// forced `Backend::Stabilizer` and must not collide with the Auto-backend
/// Abelian row.
fn solver_figures_with<G, F>(
    strategy: Strategy,
    backend: Backend,
    row: &'static str,
    instance: &HspInstance<G, F>,
    label: String,
    reps: usize,
) -> StrategyFigures
where
    G: Group + 'static,
    G::Elem: 'static,
    F: nahsp_core::oracle::HidingFunction<G>,
{
    let mut walls = Vec::with_capacity(reps);
    let mut queries = Vec::with_capacity(reps);
    let mut gates = Vec::with_capacity(reps);
    for rep in 0..reps {
        let solver = HspSolver::builder()
            .strategy(strategy)
            .backend(backend)
            .seed(1000 + rep as u64)
            .build();
        let report = solver.solve(instance).expect("bench-solver solve");
        walls.push(report.wall.as_secs_f64() * 1e6);
        queries.push(report.queries.oracle);
        gates.push(report.queries.gates);
    }
    StrategyFigures {
        strategy: row,
        instance: label,
        wall_us: median_f64(walls),
        oracle_queries: median_u64(queries),
        gates: median_u64(gates),
    }
}

/// The machine-readable solver benchmark: one row per strategy, medians of
/// wall-clock, oracle queries and simulated gates, written as JSON.
fn bench_solver_json(smoke: bool) {
    let reps = if smoke { 3 } else { 5 };
    let mut rows: Vec<StrategyFigures> = Vec::new();

    // Abelian (direct dispatch; Simon-style product instance).
    {
        let k = if smoke { 8 } else { 12 };
        let g = AbelianProduct::new(vec![2u64; k]);
        let h: Vec<Vec<u64>> = (0..k / 2)
            .map(|i| {
                let mut v = vec![0u64; k];
                v[i] = 1;
                v[k - 1 - i] = 1;
                v
            })
            .collect();
        let instance = HspInstance::with_coset_oracle(g, &h, 1 << (k / 2 + 1)).expect("oracle");
        rows.push(solver_figures(
            Strategy::Abelian,
            &instance,
            format!("Z2^{k}, |H| = 2^{}", k / 2),
            reps,
        ));
    }

    // Stabilizer tableau (forced backend): a 2-group far past every
    // amplitude simulator's capacity. The structural oracle labels by
    // coset representative (polynomial), and the planted generators are
    // the ground truth the Clifford lowering consumes.
    {
        let k = if smoke { 16 } else { 64 };
        let g = AbelianProduct::new(vec![2u64; k]);
        let h: Vec<Vec<u64>> = (0..k / 2)
            .map(|i| {
                let mut v = vec![0u64; k];
                v[i] = 1;
                v[k - 1 - i] = 1;
                v
            })
            .collect();
        let oracle = SubgroupOracle::new(g.clone(), &h);
        let hiding = AbelianAsHiding { oracle: &oracle };
        let instance = HspInstance::new(g, hiding).with_ground_truth(h);
        rows.push(solver_figures_with(
            Strategy::Abelian,
            Backend::Stabilizer,
            "Stabilizer",
            &instance,
            format!("Z2^{k}, |H| = 2^{}", k / 2),
            reps,
        ));
    }

    // Noisy robust solving: the Abelian product instance again, but behind
    // a `NoisyOracle` flipping every classical label with probability 5%.
    // The solver declares the noise, so labels are answered by 5-fold
    // majority voting — the query median prices the robustness overhead
    // against the clean Abelian row above.
    {
        let k = if smoke { 8 } else { 12 };
        let g = AbelianProduct::new(vec![2u64; k]);
        let mut h = vec![0u64; k];
        h[0] = 1;
        h[k - 1] = 1;
        let oracle = CosetTableOracle::new(g.clone(), &[h.clone()], 1 << (k + 1));
        let cfg = NoiseConfig::new().flip(0.05).seed(40);
        let instance =
            HspInstance::new(g, NoisyOracle::new(oracle, cfg)).with_ground_truth(vec![h]);
        let mut walls = Vec::with_capacity(reps);
        let mut queries = Vec::with_capacity(reps);
        let mut gates = Vec::with_capacity(reps);
        for rep in 0..reps {
            let solver = HspSolver::builder()
                .strategy(Strategy::Abelian)
                .noise(cfg)
                .seed(1000 + rep as u64)
                .build();
            let report = solver.solve(&instance).expect("bench-solver noisy solve");
            walls.push(report.wall.as_secs_f64() * 1e6);
            queries.push(report.queries.oracle);
            gates.push(report.queries.gates);
        }
        rows.push(StrategyFigures {
            strategy: "Noisy",
            instance: format!("Z2^{k}, eps = 0.05, 5-vote majority"),
            wall_us: median_f64(walls),
            oracle_queries: median_u64(queries),
            gates: median_u64(gates),
        });
    }

    // NormalSubgroup (Thm 8, Schreier–Sims fast path): A_n inside S_n.
    {
        let n = if smoke { 5 } else { 6 };
        let (sn, oracle) = perm_instance(n);
        let an_gens = nahsp_groups::perm::PermGroup::alternating(n).gens;
        let instance = HspInstance::new(sn, oracle)
            .promise_normal()
            .with_ground_truth(an_gens);
        rows.push(solver_figures(
            Strategy::NormalSubgroup,
            &instance,
            format!("A_{n} hidden in S_{n}"),
            reps,
        ));
    }

    // SmallCommutator (Thm 11 / Cor 12): extraspecial p-group.
    {
        let p = if smoke { 3 } else { 5 };
        let (g, oracle) = extraspecial_instance(p);
        let instance = HspInstance::new(g, oracle);
        rows.push(solver_figures(
            Strategy::SmallCommutator,
            &instance,
            format!("Heisenberg(p = {p}), |G| = p^3"),
            reps,
        ));
    }

    // Ea2Cyclic (Thm 13): wreath product.
    {
        let half = if smoke { 2 } else { 3 };
        let (g, oracle, _coords, _h) = wreath_instance(half);
        let instance = HspInstance::new(g, oracle);
        rows.push(solver_figures(
            Strategy::Ea2Cyclic,
            &instance,
            format!("Z2^{half} wr Z2"),
            reps,
        ));
    }

    // Ea2General (Thm 13, general quotient).
    {
        let (k, m, coeffs) = if smoke {
            (3usize, 7u64, 0b011u64)
        } else {
            (4, 15, 0b0011)
        };
        let (g, oracle, _coords) = semidirect_instance(k, m, coeffs);
        let instance = HspInstance::new(g, oracle);
        rows.push(solver_figures(
            Strategy::Ea2General,
            &instance,
            format!("Z2^{k} : Z{m}"),
            reps,
        ));
    }

    // Ettinger–Høyer dihedral baseline.
    {
        let n = if smoke { 16u64 } else { 64 };
        let g = Dihedral::new(n);
        let instance =
            HspInstance::with_coset_oracle(g, &[(3u64, true)], 2 * n as usize + 4).expect("oracle");
        rows.push(solver_figures(
            Strategy::EttingerHoyerDihedral,
            &instance,
            format!("D_{n}, reflection slope 3"),
            reps,
        ));
    }

    // Classical baselines on the same cyclic instance.
    {
        let n = if smoke { 128u64 } else { 512 };
        let g = CyclicGroup::new(n);
        let instance =
            HspInstance::with_coset_oracle(g.clone(), &[8u64], n as usize + 4).expect("oracle");
        rows.push(solver_figures(
            Strategy::ExhaustiveScan,
            &instance,
            format!("Z_{n}, H = <8>"),
            reps,
        ));
        let instance = HspInstance::with_coset_oracle(g, &[8u64], n as usize + 4).expect("oracle");
        rows.push(solver_figures(
            Strategy::BirthdayCollision,
            &instance,
            format!("Z_{n}, H = <8>"),
            reps,
        ));
    }

    // Hand-rolled JSON: no serde in the offline workspace.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"nahsp-bench-solver/v1\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"strategies\": {\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"instance\": \"{}\", \"wall_us_median\": {:.1}, \
             \"oracle_queries_median\": {}, \"gates_median\": {} }}{}\n",
            row.strategy,
            row.instance,
            row.wall_us,
            row.oracle_queries,
            row.gates,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let out = std::env::var("BENCH_SOLVER_OUT").unwrap_or_else(|_| "BENCH_solver.json".into());
    // The `load-gen` bin owns the single-line "service" entry; rewriting
    // the strategy rows must not drop it.
    if let Some(service) = std::fs::read_to_string(&out)
        .ok()
        .and_then(|old| extract_service_line(&old))
    {
        json = splice_service_line(&json, &service);
    }
    std::fs::write(&out, &json).expect("write bench output");
    println!("\nbench-solver: wrote {} strategies to {out}", rows.len());
    print!("{json}");

    // Smoke mode doubles as CI's performance-trajectory gate: every
    // strategy's (smaller) smoke workload must stay within 2x of the
    // committed full-mode median. Smoke instances are strictly smaller
    // than full ones, so an honest build clears the bar with slack; a >2x
    // excess means a real regression on that strategy's solve path.
    if smoke {
        let baseline =
            std::env::var("BENCH_SOLVER_BASELINE").unwrap_or_else(|_| "BENCH_solver.json".into());
        match baseline_medians(&baseline) {
            None => println!(
                "bench-solver --smoke: no committed baseline at {baseline}; skipping regression gate"
            ),
            Some(committed) => {
                let mut regressed = false;
                println!("\nregression gate vs {baseline} (fail at >2.0x):");
                for row in &rows {
                    let Some((_, base, base_gates)) =
                        committed.iter().find(|(n, _, _)| n == row.strategy)
                    else {
                        println!("  {:<22} (no committed median; skipped)", row.strategy);
                        continue;
                    };
                    let ratio = row.wall_us / base.max(1.0);
                    let verdict = if ratio > 2.0 {
                        regressed = true;
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "  {:<22} smoke {:>10.1} µs vs committed {:>10.1} µs = {ratio:.2}x {verdict}",
                        row.strategy, row.wall_us, base
                    );
                    // Gate counts are machine-independent, so they make a
                    // sharper tripwire than wall time for algorithmic
                    // regressions. The Stabilizer line is the one whose gate
                    // budget the hot-path work targets; its smoke instance
                    // (k=16) is strictly smaller than the committed full one
                    // (k=64), so exceeding 2x the committed count means the
                    // circuit itself grew, not the machine slowed down.
                    if row.strategy == "Stabilizer" && *base_gates > 0.0 {
                        let gratio = row.gates as f64 / base_gates;
                        let gverdict = if gratio > 2.0 {
                            regressed = true;
                            "REGRESSED"
                        } else {
                            "ok"
                        };
                        println!(
                            "  {:<22} smoke {:>10} gates vs committed {:>10.0} = {gratio:.2}x {gverdict}",
                            "Stabilizer (gates)", row.gates, base_gates
                        );
                    }
                }
                if regressed {
                    println!("bench-solver --smoke: regression detected");
                    std::process::exit(1);
                }
            }
        }
    }
}

/// Parse `(strategy, wall_us_median, gates_median)` triples out of a
/// committed `BENCH_solver.json` (hand-rolled: the offline workspace has no
/// serde). A row without a `gates_median` field reports 0.0 gates, which the
/// gate-count check treats as "no baseline".
fn baseline_medians(path: &str) -> Option<Vec<(String, f64, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let field = |t: &str, key: &str| -> Option<f64> {
        let pos = t.find(key)?;
        let rest = t[pos + key.len()..].trim_start();
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        num.parse::<f64>().ok()
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let t = line.trim_start();
        if !t.starts_with('"') || !t.contains("\"wall_us_median\":") {
            continue;
        }
        let name_end = t[1..].find('"')?;
        let name = &t[1..1 + name_end];
        let wall = field(t, "\"wall_us_median\":")?;
        let gates = field(t, "\"gates_median\":").unwrap_or(0.0);
        out.push((name.to_string(), wall, gates));
    }
    Some(out)
}

/// E1 — Abelian HSP: quantum queries poly(log|A|) vs classical birthday.
fn e1_abelian_hsp() {
    println!("\nE1. Abelian HSP over Z2^k (Thm 3 substrate): quantum vs classical");
    let mut t = Table::new(&[
        "k",
        "|A|",
        "q-queries",
        "rounds",
        "quantum µs",
        "birthday-queries",
    ]);
    let mut rng = Rng64::seed_from_u64(1);
    for k in [4usize, 6, 8, 10, 12, 14, 16] {
        let (_, oracle) = abelian_instance(k, &mut rng);
        let solver = AbelianHsp::new(Backend::Ideal);
        let (res, us) = micros(|| solver.solve(&oracle, &mut rng));
        assert!(res.subgroup.same_subgroup(oracle.hidden_subgroup()));
        // classical birthday on the same instance (capped)
        let bq = if k <= 14 {
            let elems: Vec<Vec<u64>> = (0..(1u64 << k))
                .map(|m| (0..k).map(|i| (m >> i) & 1).collect())
                .collect();
            let ap = AbelianProduct::new(vec![2; k]);
            let hgens = oracle.ground_truth().unwrap_or_default();
            let ora2 = SubgroupOracle::new(ap.clone(), &hgens);
            let wrapped = AbelianAsHiding { oracle: &ora2 };
            let bres = birthday_collision(&ap, &wrapped, &elems, 1 << 22, &mut rng);
            format!("{}", bres.queries)
        } else {
            "-".into()
        };
        t.row(&[
            format!("{k}"),
            format!("2^{k}"),
            format!("{}", res.quantum_queries),
            format!("{}", res.rounds),
            format!("{us:.0}"),
            bq,
        ]);
    }
    t.print();
}

/// Adapter: an Abelian `HidingOracle` viewed as a group `HidingFunction`.
struct AbelianAsHiding<'a> {
    oracle: &'a SubgroupOracle,
}

impl nahsp_core::oracle::HidingFunction<AbelianProduct> for AbelianAsHiding<'_> {
    fn eval(&self, g: &Vec<u64>) -> u64 {
        self.oracle.label(g)
    }

    fn queries(&self) -> u64 {
        0
    }
}

/// E2 — order finding: simulated Shor circuit vs exact emulation.
fn e2_order_finding() {
    println!("\nE2. Order finding (Shor substrate): simulated circuit vs exact");
    let mut t = Table::new(&["n", "element", "order", "simulated", "phase qubits", "µs"]);
    let mut rng = Rng64::seed_from_u64(2);
    for (n, x) in [(15u64, 2u64), (21, 2), (30, 7), (33, 2), (35, 2)] {
        let images: Vec<u32> = (0..n as u32).map(|y| ((y as u64 * x) % n) as u32).collect();
        let perm = Perm::from_images(images);
        let pg = PermGroup::new(n as usize, vec![perm.clone()]);
        let exact = OrderFinder::Exact.find(&pg, &perm, &mut rng);
        let max_order = 16u64.max(exact.next_power_of_two());
        let mut qubits = 1usize;
        while (1u64 << qubits) < 2 * max_order * max_order {
            qubits += 1;
        }
        let (sim, us) = micros(|| OrderFinder::Simulated { max_order }.find(&pg, &perm, &mut rng));
        assert_eq!(sim, exact);
        t.row(&[
            format!("{n}"),
            format!("{x}"),
            format!("{exact}"),
            format!("{sim}"),
            format!("{qubits}"),
            format!("{us:.0}"),
        ]);
    }
    t.print();
}

/// E3 — Theorem 6 constructive membership across subgroup ranks.
fn e3_membership() {
    println!("\nE3. Thm 6 constructive membership in Abelian subgroups of S_9");
    let mut t = Table::new(&["rank r", "|<h>|", "member?", "exponents", "µs"]);
    let mut rng = Rng64::seed_from_u64(3);
    let s9 = PermGroup::symmetric(9);
    let cycles: Vec<Perm> = vec![
        Perm::from_cycles(9, &[&[0, 1, 2]]),
        Perm::from_cycles(9, &[&[3, 4, 5, 6]]),
        Perm::from_cycles(9, &[&[7, 8]]),
    ];
    let hsp = AbelianHsp::new(Backend::SimulatorCoset);
    for r in 1..=3usize {
        let hs: Vec<Perm> = cycles[..r].to_vec();
        let sizes: u64 = [3u64, 4, 2][..r].iter().product();
        let mut target = s9.identity();
        for (h, &o) in hs.iter().zip(&[3u64, 4, 2]) {
            let e = rng.gen_range(0..o);
            target = s9.multiply(&target, &s9.pow(h, e));
        }
        let (res, us) =
            micros(|| abelian_membership(&s9, &hs, &target, &hsp, &OrderFinder::Exact, &mut rng));
        let got = res.expect("planted member");
        t.row(&[
            format!("{r}"),
            format!("{sizes}"),
            "yes".into(),
            format!("{got:?}"),
            format!("{us:.0}"),
        ]);
        let alien = Perm::from_cycles(9, &[&[0, 3]]);
        let (res, us) =
            micros(|| abelian_membership(&s9, &hs, &alien, &hsp, &OrderFinder::Exact, &mut rng));
        assert!(res.is_none());
        t.row(&[
            format!("{r}"),
            format!("{sizes}"),
            "no".into(),
            "-".into(),
            format!("{us:.0}"),
        ]);
    }
    t.print();
}

/// E4 — Theorem 8 on solvable groups: sweep |G|.
fn e4_normal_hsp_solvable() {
    println!("\nE4. Thm 8 hidden normal subgroup in solvable Z2^k ⋊ Zm");
    let mut t = Table::new(&["k", "m", "|G|", "|N| found", "f-queries", "µs"]);
    let solver = HspSolver::builder().seed(4).build();
    for (k, m, coeffs) in [
        (3usize, 7u64, 0b011u64),
        (4, 15, 0b0011),
        (5, 31, 0b00101),
        (6, 63, 0b000011),
    ] {
        let g = nahsp_groups::semidirect::Semidirect::new(
            k,
            m,
            nahsp_groups::matgf::Gf2Mat::companion(k, coeffs),
        );
        let n_gens = g.normal_subgroup_gens();
        let oracle = CosetTableOracle::try_new(g.clone(), &n_gens, 1 << 16).expect("oracle");
        let instance = HspInstance::new(g.clone(), oracle).promise_normal();
        let (report, us) = micros(|| solver.solve(&instance).expect("solve"));
        assert_eq!(report.strategy, Strategy::NormalSubgroup);
        assert_eq!(report.detail, StrategyDetail::Normal { quotient_order: m });
        t.row(&[
            format!("{k}"),
            format!("{m}"),
            format!("{}", (1u64 << k) * m),
            format!("{}", report.order.expect("enumerable")),
            format!("{}", report.queries.oracle),
            format!("{us:.0}"),
        ]);
    }
    t.print();
}

/// E5 — Theorem 8 on permutation groups: A_n in S_n sweep.
fn e5_normal_hsp_permutation() {
    println!("\nE5. Thm 8 hidden normal subgroup in permutation groups (A_n ⊴ S_n)");
    let mut t = Table::new(&["n", "|G|", "|N| found", "f-queries", "µs"]);
    let solver = HspSolver::builder().seed(5).build();
    for n in [5usize, 6, 7, 8, 9, 10] {
        let (sn, oracle) = perm_instance(n);
        let instance = HspInstance::new(sn, oracle).promise_normal();
        let (report, us) = micros(|| solver.solve(&instance).expect("solve"));
        assert_eq!(report.detail, StrategyDetail::Normal { quotient_order: 2 });
        let fact: u64 = (1..=n as u64).product();
        assert_eq!(report.order, Some(fact / 2));
        t.row(&[
            format!("{n}"),
            format!("{fact}"),
            format!("{}", fact / 2),
            format!("{}", report.queries.oracle),
            format!("{us:.0}"),
        ]);
    }
    t.print();
}

/// E6 — Theorem 11 / Corollary 12: extraspecial sweep over p.
fn e6_small_commutator() {
    println!("\nE6. Thm 11 / Cor 12: extraspecial p-groups (|G| = p^3, |G'| = p)");
    let mut t = Table::new(&[
        "p",
        "|G|",
        "|H|",
        "f-queries",
        "µs",
        "scan-queries",
        "birthday-queries",
    ]);
    let mut rng = Rng64::seed_from_u64(6);
    let solver = HspSolver::builder().seed(6).build();
    for p in [3u64, 5, 7, 11, 13] {
        let (g, oracle) = extraspecial_instance(p);
        let instance = HspInstance::new(g.clone(), oracle);
        let (report, us) = micros(|| solver.solve(&instance).expect("solve"));
        assert_eq!(report.strategy, Strategy::SmallCommutator);
        assert_eq!(report.order, Some(p * p));
        let q_thm11 = report.queries.oracle;
        let (g2, oracle2) = extraspecial_instance(p);
        let (_, scan_q) = try_exhaustive_scan(&g2, &oracle2, 1 << 16).expect("scan");
        let (g3, oracle3) = extraspecial_instance(p);
        let all = enumerate_subgroup(&g3, &g3.generators(), 1 << 16).unwrap();
        let bres = birthday_collision(&g3, &oracle3, &all, 1 << 22, &mut rng);
        t.row(&[
            format!("{p}"),
            format!("{}", p * p * p),
            format!("{}", p * p),
            format!("{q_thm11}"),
            format!("{us:.0}"),
            format!("{scan_q}"),
            format!("{}", bres.queries),
        ]);
    }
    t.print();
}

/// E7 — Theorem 13 general case: cost scales with |G/N|.
fn e7_ea2_general() {
    println!("\nE7. Thm 13 general case: Z2^k ⋊ Zm, transversal V of size |G/N|");
    let mut t = Table::new(&["k", "m=|G/N|", "|V|", "HSP instances", "f-queries", "µs"]);
    let solver = HspSolver::builder()
        .strategy(Strategy::Ea2General)
        .seed(7)
        .build();
    for (k, m, coeffs) in [(3usize, 7u64, 0b011u64), (4, 15, 0b0011), (5, 31, 0b00101)] {
        let (g, oracle, _coords) = semidirect_instance(k, m, coeffs);
        let truth_len = oracle.hidden_subgroup_elements().len();
        let instance = HspInstance::new(g.clone(), oracle);
        let (report, us) = micros(|| solver.solve(&instance).expect("solve"));
        assert_eq!(report.order, Some(truth_len as u64));
        let StrategyDetail::Ea2 {
            v_size,
            hsp_instances,
        } = report.detail
        else {
            unreachable!("EA2 strategy carries EA2 detail")
        };
        t.row(&[
            format!("{k}"),
            format!("{m}"),
            format!("{v_size}"),
            format!("{hsp_instances}"),
            format!("{}", report.queries.oracle),
            format!("{us:.0}"),
        ]);
    }
    t.print();
}

/// E8 — Theorem 13 cyclic case: wreath products, |V| = O(log m).
fn e8_ea2_cyclic() {
    println!("\nE8. Thm 13 cyclic case: Z2^k ≀ Z2 (Rötteler–Beth), simulator + ideal");
    let mut t = Table::new(&["k (=2·half)", "|G|", "backend", "|V|", "f-queries", "µs"]);
    let sim_solver = HspSolver::builder().seed(8).build();
    for half in [2usize, 3, 4, 5, 6, 7] {
        let (g, oracle, _coords, h) = wreath_instance(half);
        let instance = HspInstance::new(g.clone(), oracle);
        let (report, us) = micros(|| sim_solver.solve(&instance).expect("solve"));
        assert_eq!(report.strategy, Strategy::Ea2Cyclic);
        assert!(report.generators.contains(&h));
        let StrategyDetail::Ea2 { v_size, .. } = report.detail else {
            unreachable!("EA2 strategy carries EA2 detail")
        };
        t.row(&[
            format!("{}", 2 * half),
            format!("2^{}", 2 * half + 1),
            "simulator".into(),
            format!("{v_size}"),
            format!("{}", report.queries.oracle),
            format!("{us:.0}"),
        ]);
    }
    let ideal_solver = HspSolver::builder().backend(Backend::Ideal).seed(8).build();
    for half in [8usize, 12, 16, 20, 24] {
        let (g, oracle, _coords, _truth, h) = wreath_instance_structural(half);
        // the solver assembles the ideal sampler's witness from the
        // instance's ground-truth generators
        let instance = HspInstance::new(g.clone(), oracle).with_ground_truth(vec![h]);
        let (report, us) = micros(|| ideal_solver.solve(&instance).expect("solve"));
        assert!(report.generators.contains(&h));
        let StrategyDetail::Ea2 { v_size, .. } = report.detail else {
            unreachable!("EA2 strategy carries EA2 detail")
        };
        t.row(&[
            format!("{}", 2 * half),
            format!("2^{}", 2 * half + 1),
            "ideal".into(),
            format!("{v_size}"),
            format!("{}", report.queries.oracle),
            format!("{us:.0}"),
        ]);
    }
    t.print();
}

/// E9 — Lemma 9 / Thm 10 robustness to ε-approximate coset states.
///
/// The Las Vegas verification loop absorbs sampling noise by drawing more
/// rounds, so the interesting curve is *cost* (rounds) alongside success.
fn e9_epsilon_robustness() {
    println!("\nE9. Lemma 9 / Thm 10: success and sampling cost vs coset-state error ε");
    let mut t = Table::new(&["ε", "lemma9 success", "avg rounds", "thm10 order success"]);
    let trials = 30;
    for eps in [0.0f64, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
        let mut rng = Rng64::seed_from_u64(9);
        let mut ok9 = 0;
        let mut rounds_total = 0usize;
        for _ in 0..trials {
            let a = AbelianProduct::new(vec![8]);
            let oracle = PerturbedOracle::new(a, &[vec![4]], eps);
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                solve_state_hsp(&oracle, Lemma9Backend::Simulator, &mut rng)
            }));
            if let Ok(res) = res {
                rounds_total += res.rounds;
                if res.subgroup.same_subgroup(oracle.hidden_subgroup()) {
                    ok9 += 1;
                }
            }
        }
        let mut ok10 = 0;
        for _ in 0..trials {
            let s4 = PermGroup::symmetric(4);
            let v4 = vec![
                Perm::from_cycles(4, &[&[0, 1], &[2, 3]]),
                Perm::from_cycles(4, &[&[0, 2], &[1, 3]]),
            ];
            let states = CosetStates::new(s4.clone(), &v4, 100, eps);
            let c3 = Perm::from_cycles(4, &[&[0, 1, 2]]);
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                quotient_order(&states, &c3, Lemma9Backend::Simulator, &mut rng)
            }));
            if res.map(|r| r == 3).unwrap_or(false) {
                ok10 += 1;
            }
        }
        t.row(&[
            format!("{eps:.2}"),
            format!("{ok9}/{trials}"),
            format!("{:.1}", rounds_total as f64 / trials as f64),
            format!("{ok10}/{trials}"),
        ]);
    }
    t.print();
}

/// E10 — simulator substrate: QFT cost & approximate-QFT fidelity.
fn e10_qft() {
    println!("\nE10. QFT: dense DFT vs qubit circuit; approximate-QFT fidelity (t = 10)");
    let mut t = Table::new(&["dim", "dense µs", "circuit µs"]);
    for t_qubits in [6usize, 8, 10, 12] {
        let d = 1usize << t_qubits;
        let (_, dense_us) = micros(|| {
            let mut s = State::basis_index(Layout::new(vec![d]), 1);
            dft_site(&mut s, 0, false);
            s
        });
        let sites: Vec<usize> = (0..t_qubits).collect();
        let (_, circ_us) = micros(|| {
            let mut s = State::basis_index(Layout::qubits(t_qubits), 1);
            qft_binary_register(&mut s, &sites, false);
            s
        });
        t.row(&[
            format!("2^{t_qubits}"),
            format!("{dense_us:.0}"),
            format!("{circ_us:.0}"),
        ]);
    }
    t.print();
    let mut t2 = Table::new(&["cutoff", "fidelity vs exact"]);
    let tq = 10usize;
    let sites: Vec<usize> = (0..tq).collect();
    let mut exact = State::basis_index(Layout::qubits(tq), 677);
    qft_binary_register(&mut exact, &sites, false);
    for cutoff in [2usize, 3, 4, 5, 6, 8, 10] {
        let mut approx = State::basis_index(Layout::qubits(tq), 677);
        approx_qft_binary_register(&mut approx, &sites, false, cutoff);
        t2.row(&[
            format!("{cutoff}"),
            format!("{:.6}", approx.fidelity(&exact)),
        ]);
    }
    t2.print();
}

/// A1 — Ideal vs simulator Fourier-sample distributions.
fn a1_backend_agreement() {
    println!("\nA1. Backend ablation: TV distance of Fourier-sample histograms");
    let mut t = Table::new(&["instance", "TV(full, coset)", "TV(full, ideal)"]);
    let mut rng = Rng64::seed_from_u64(11);
    let n = 4000usize;
    for (moduli, hgens) in [
        (vec![4u64, 4], vec![vec![2u64, 0], vec![0u64, 2]]),
        (vec![8], vec![vec![2u64]]),
        (vec![2, 2, 2], vec![vec![1u64, 1, 0]]),
    ] {
        let a = AbelianProduct::new(moduli.clone());
        let dim: u64 = moduli.iter().product();
        let idx = |y: &[u64]| {
            let mut i = 0u64;
            for (c, m) in y.iter().zip(&moduli) {
                i = i * m + c;
            }
            i as usize
        };
        let mut h_full = vec![0f64; dim as usize];
        let mut h_coset = vec![0f64; dim as usize];
        let mut h_ideal = vec![0f64; dim as usize];
        let truth = SubgroupLattice::from_generators(&a, &perp(&a, &hgens));
        let oracle = SubgroupOracle::new(a.clone(), &hgens);
        let gates = GateCounter::new();
        for _ in 0..n {
            h_ideal[idx(&truth.random_element(&mut rng))] += 1.0 / n as f64;
            h_full[idx(&fourier_sample_full(&oracle, &gates, &mut rng))] += 1.0 / n as f64;
            h_coset[idx(&fourier_sample_coset(&oracle, &gates, &mut rng))] += 1.0 / n as f64;
        }
        t.row(&[
            format!("Z{moduli:?} H={hgens:?}"),
            format!("{:.4}", total_variation(&h_full, &h_coset)),
            format!("{:.4}", total_variation(&h_full, &h_ideal)),
        ]);
    }
    t.print();
}

/// A2 — Ettinger–Høyer dihedral: queries vs post-processing.
fn a2_ettinger_hoyer() {
    println!("\nA2. Ettinger–Høyer dihedral: O(log n) queries, Θ(n) post-processing");
    let mut t = Table::new(&["n", "queries", "candidates", "post µs", "recovered"]);
    let mut rng = Rng64::seed_from_u64(12);
    for bits in [6u32, 8, 10, 12, 14, 16] {
        let n = 1u64 << bits;
        let g = Dihedral::new(n);
        let d = rng.gen_range(0..n);
        let samples = (12 * bits) as usize;
        let (res, us) = micros(|| {
            ettinger_hoyer_dihedral(
                &g,
                d,
                samples,
                |cand| cand == d,
                &GateCounter::new(),
                &mut rng,
            )
        });
        t.row(&[
            format!("{n}"),
            format!("{}", res.quantum_queries),
            format!("{}", res.candidates_scanned),
            format!("{us:.0}"),
            format!("{}", res.d == d),
        ]);
    }
    t.print();
}
