//! Shared workload builders for the benchmark harness.
//!
//! Every experiment in EXPERIMENTS.md (E1–E10, A1–A2) is generated from the
//! instance constructors here, so the criterion benches and the
//! `experiments` table binary measure exactly the same workloads.

use nahsp_abelian::hsp::SubgroupOracle;
use nahsp_core::ea2::{semidirect_coords, Ea2GroundTruth, N2Coords};
use nahsp_core::oracle::{CosetTableOracle, FnOracle};
use nahsp_groups::extraspecial::Extraspecial;
use nahsp_groups::matgf::Gf2Mat;
use nahsp_groups::perm::PermGroup;
use nahsp_groups::semidirect::Semidirect;
use nahsp_groups::{AbelianProduct, Group};
use nahsp_testkit::symmetric_wreath_element;
use rand::Rng;

/// E1 workload: `A = Z₂^k` with a random hidden subgroup of rank `k/2`.
pub fn abelian_instance(k: usize, rng: &mut impl Rng) -> (AbelianProduct, SubgroupOracle) {
    let a = AbelianProduct::new(vec![2; k]);
    let h_gens: Vec<Vec<u64>> = (0..k / 2)
        .map(|_| (0..k).map(|_| rng.gen_range(0..2u64)).collect())
        .collect();
    let oracle = SubgroupOracle::new(a.clone(), &h_gens);
    (a, oracle)
}

/// E6 workload: extraspecial group of order `p³` with a hidden maximal
/// Abelian subgroup `⟨e₁, z⟩` (order `p²`).
pub fn extraspecial_instance(p: u64) -> (Extraspecial, CosetTableOracle<Extraspecial>) {
    let g = Extraspecial::heisenberg(p);
    let e1 = {
        let mut v = vec![0u64; 3];
        v[0] = 1;
        v
    };
    let h = vec![e1, g.center_generator()];
    let limit = (p * p * p) as usize + 8;
    let oracle = CosetTableOracle::new(g.clone(), &h, limit);
    (g, oracle)
}

/// E7/E8 workload (simulator range): wreath product `Z₂^half ≀ Z₂` hiding a
/// twisted involution `⟨(w|w, 1)⟩`.
pub fn wreath_instance(
    half: usize,
) -> (
    Semidirect,
    CosetTableOracle<Semidirect>,
    N2Coords<Semidirect>,
    (u64, u64),
) {
    let g = Semidirect::wreath_z2(half);
    let h = symmetric_wreath_element(half, (1u64 << half) - 1);
    let oracle = CosetTableOracle::new(g.clone(), &[h], 1usize << (2 * half + 2));
    let coords = semidirect_coords(&g);
    (g, oracle, coords, h)
}

/// E8 workload (ideal range): same wreath family with a *structural* oracle
/// (min of the two-element coset — O(1) per query at any `k`) plus the
/// ground truth the ideal sampler consumes.
#[allow(clippy::type_complexity)]
pub fn wreath_instance_structural(
    half: usize,
) -> (
    Semidirect,
    FnOracle<Semidirect, (u64, u64), Box<dyn Fn(&(u64, u64)) -> (u64, u64) + Sync + Send>>,
    N2Coords<Semidirect>,
    Ea2GroundTruth<Semidirect>,
    (u64, u64),
) {
    let g = Semidirect::wreath_z2(half);
    let h = symmetric_wreath_element(half, (1u64 << half) - 1);
    let g2 = g.clone();
    let f: Box<dyn Fn(&(u64, u64)) -> (u64, u64) + Sync + Send> =
        Box::new(move |x: &(u64, u64)| std::cmp::min(*x, g2.multiply(x, &h)));
    let oracle = FnOracle::new(f);
    let coords = semidirect_coords(&g);
    let truth = Ea2GroundTruth::<Semidirect> {
        hn_basis: vec![],
        witness: Box::new(move |z: &(u64, u64)| if z.1 == 1 { Some(h) } else { None }),
    };
    (g, oracle, coords, truth, h)
}

/// E7 workload: `Z₂^k ⋊ Z_m` with companion-matrix action of order `m` and
/// a hidden subgroup mixing `N` and twist parts.
pub fn semidirect_instance(
    k: usize,
    m: u64,
    coeffs: u64,
) -> (
    Semidirect,
    CosetTableOracle<Semidirect>,
    N2Coords<Semidirect>,
) {
    let g = Semidirect::new(k, m, Gf2Mat::companion(k, coeffs));
    let h_gens = vec![(0u64, m / nahsp_numtheory::factor(m)[0].0)];
    let oracle = CosetTableOracle::new(g.clone(), &h_gens, (1usize << k) * m as usize + 8);
    let coords = semidirect_coords(&g);
    (g, oracle, coords)
}

/// E5 workload: `A_n ⊴ S_n` through the Schreier–Sims coset oracle.
pub fn perm_instance(n: usize) -> (PermGroup, nahsp_core::oracle::PermCosetOracle) {
    let sn = PermGroup::symmetric(n);
    let an = PermGroup::alternating(n);
    let oracle = nahsp_core::oracle::PermCosetOracle::new(n, &an.gens);
    (sn, oracle)
}

// ------------------------------------------------------------------------
// BENCH_solver.json plumbing shared by the `experiments` and `load-gen`
// bins (hand-rolled and line-based: the offline workspace has no serde).
// The `"service"` entry is kept on a single line so either bin can splice
// it in or out without understanding the rest of the document.
// ------------------------------------------------------------------------

/// Insert or replace the single-line `"service"` entry of a
/// `BENCH_solver.json` document, preserving every other line.
/// `service_object` is the brace-delimited JSON object (one line).
pub fn splice_service_line(doc: &str, service_object: &str) -> String {
    let mut lines: Vec<String> = doc
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"service\":"))
        .map(str::to_string)
        .collect();
    while lines.last().is_some_and(|l| l.trim().is_empty()) {
        lines.pop();
    }
    // Insert just before the document's closing brace; the entry that
    // precedes the insertion point needs a trailing comma.
    let close = lines.len().saturating_sub(1);
    if close > 0 {
        let prev = lines[close - 1].trim_end().to_string();
        if !prev.ends_with(',') && !prev.ends_with('{') {
            lines[close - 1] = format!("{prev},");
        }
    }
    lines.insert(close, format!("  \"service\": {service_object}"));
    lines.join("\n") + "\n"
}

/// The single-line `"service"` object of a `BENCH_solver.json` document,
/// if one is present.
pub fn extract_service_line(doc: &str) -> Option<String> {
    doc.lines().find_map(|l| {
        l.trim()
            .strip_prefix("\"service\":")
            .map(|rest| rest.trim().trim_end_matches(',').to_string())
    })
}

/// Pull one numeric field out of a single-line JSON object.
pub fn json_number_field(object: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let pos = object.find(&key)?;
    let rest = object[pos + key.len()..].trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Nearest-rank percentile (`p` in 0–100) of an ascending-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Simple fixed-width table printer for the experiments binary.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nahsp_core::oracle::HidingFunction;
    use rand::SeedableRng;

    #[test]
    fn instances_construct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let (_, o) = abelian_instance(6, &mut rng);
        assert!(o.hidden_subgroup().order() >= 1);
        let (_, o) = extraspecial_instance(3);
        assert_eq!(o.hidden_subgroup_elements().len(), 9);
        let (g, o, _, h) = wreath_instance(2);
        assert_eq!(o.eval(&g.identity()), o.eval(&h));
        let (g, o, _, _, h) = wreath_instance_structural(10);
        assert_eq!(o.eval(&g.identity()), o.eval(&h));
        let (_, o, _) = semidirect_instance(3, 7, 0b011);
        assert!(o.hidden_subgroup_elements().len() > 1);
        let (_, o) = perm_instance(5);
        assert_eq!(o.hidden_chain().order(), 60);
    }

    #[test]
    fn table_prints() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn service_line_splices_into_fresh_and_existing_documents() {
        let doc = "{\n  \"schema\": \"v1\",\n  \"strategies\": {\n    \"Abelian\": { \"wall_us_median\": 1.0 }\n  }\n}\n";
        let service = "{ \"throughput_per_s\": 1000.0, \"p95_us\": 7.5 }";
        let spliced = splice_service_line(doc, service);
        // The strategies block gains a trailing comma; the service line is
        // last before the closing brace.
        assert!(spliced.contains("  },\n  \"service\": { \"throughput_per_s\": 1000.0"));
        assert!(spliced.ends_with("}\n"));
        assert_eq!(extract_service_line(&spliced).unwrap(), service);
        // Re-splicing replaces rather than duplicates.
        let again = splice_service_line(&spliced, "{ \"throughput_per_s\": 2000.0 }");
        assert_eq!(again.matches("\"service\":").count(), 1);
        assert!(extract_service_line(&again).unwrap().contains("2000.0"));
        // The strategy rows survive both splices verbatim.
        assert!(again.contains("\"Abelian\": { \"wall_us_median\": 1.0 }"));
        // A minimal document works too (no comma after the opening brace).
        let minimal = splice_service_line("{\n}\n", service);
        assert_eq!(minimal, format!("{{\n  \"service\": {service}\n}}\n"));
    }

    #[test]
    fn json_number_field_parses_inline_objects() {
        let obj = "{ \"mode\": \"full\", \"throughput_per_s\": 12345.6, \"p99_us\": 42 }";
        assert_eq!(json_number_field(obj, "throughput_per_s"), Some(12345.6));
        assert_eq!(json_number_field(obj, "p99_us"), Some(42.0));
        assert_eq!(json_number_field(obj, "missing"), None);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }
}
