//! # nahsp — non-Abelian hidden subgroup algorithms
//!
//! A full reproduction of **Ivanyos, Magniez & Santha, "Efficient quantum
//! algorithms for some instances of the non-Abelian hidden subgroup
//! problem"** (SPAA 2001, arXiv:quant-ph/0102014), including every substrate
//! the paper's results stand on: a mixed-radix state-vector quantum
//! simulator, a black-box group framework (permutation groups with
//! Schreier–Sims, matrix groups over finite fields, semidirect/wreath
//! products, extraspecial `p`-groups), exact integer linear algebra
//! (Smith/Hermite normal forms), the Abelian HSP engine, and the paper's
//! algorithms themselves (Theorems 6–13).
//!
//! ## The primary API: `HspSolver`
//!
//! The paper's results are special cases; the solver façade makes them one
//! problem class. Describe the instance ([`hsp::solver::HspInstance`]: a
//! group, a hiding function, optional promises and ground truth), configure
//! budgets and backends on an [`hsp::solver::HspSolver`], and `solve`
//! classifies the instance, dispatches the matching theorem, and returns a
//! uniform [`hsp::solver::HspReport`] — recovered generators, the strategy
//! used, query/gate/wall-clock accounting, and a verification verdict.
//! Failures are typed [`hsp::HspError`]s; the solve path never panics.
//!
//! ## Quickstart
//!
//! ```
//! use nahsp::prelude::*;
//!
//! // The Heisenberg group of order 27 — extraspecial, so Corollary 12
//! // applies: HSP solvable in time poly(input + p).
//! let g = Extraspecial::heisenberg(3);
//! let instance =
//!     HspInstance::with_coset_oracle(g.clone(), &[g.center_generator()], 1000).unwrap();
//!
//! let report = HspSolver::new().solve(&instance).unwrap();
//!
//! // Auto dispatch picked the small-commutator strategy (Thm 11 / Cor 12)
//! // and the recovered generators span exactly the hidden subgroup.
//! assert_eq!(report.strategy, Strategy::SmallCommutator);
//! assert_eq!(report.order, Some(3));
//! assert_eq!(report.verdict, Verdict::VerifiedExact);
//! assert!(report.queries.oracle > 0);
//! ```
//!
//! Batches fan out across threads with deterministic per-instance RNG
//! streams:
//!
//! ```
//! use nahsp::prelude::*;
//!
//! let g = Semidirect::wreath_z2(2); // Z2^2 ≀ Z2 (Rötteler–Beth family)
//! let instances: Vec<_> = [(0b0101u64, 1u64), (0b1111, 0)]
//!     .iter()
//!     .map(|&h| HspInstance::with_coset_oracle(g.clone(), &[h], 1 << 10).unwrap())
//!     .collect();
//! let solver = HspSolver::builder().parallelism(2).build();
//! for report in solver.solve_batch(&instances) {
//!     let report = report.unwrap();
//!     assert_eq!(report.strategy, Strategy::Ea2Cyclic); // Theorem 13
//!     assert_eq!(report.verdict, Verdict::VerifiedExact);
//! }
//! ```
//!
//! For many-caller serving workloads, [`hsp::service::SolverService`] wraps
//! the solver in a persistent worker pool: non-blocking ticketed
//! submission, per-request budgets, cooperative cancellation, and
//! bounded-queue backpressure — with reports identical to the sequential
//! solver's:
//!
//! ```
//! use nahsp::prelude::*;
//! use std::sync::Arc;
//!
//! let service = SolverService::builder().workers(2).build();
//! let g = CyclicGroup::new(12);
//! let instance = Arc::new(HspInstance::with_coset_oracle(g, &[4u64], 100).unwrap());
//! let ticket = service.submit(instance).unwrap();
//! assert_eq!(ticket.wait().unwrap().order, Some(3));
//! ```
//!
//! The per-theorem entry points remain available as `try_*` functions (and
//! deprecated panicking shims) in [`hsp`] for code that wants one specific
//! pipeline.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`numtheory`] | `nahsp-numtheory` | gcd/CRT, primality, factoring, dlog, continued fractions |
//! | [`qsim`] | `nahsp-qsim` | state vectors, gates, QFTs, oracles, measurement |
//! | [`groups`] | `nahsp-groups` | the `Group` trait and every concrete family + machinery |
//! | [`abelian`] | `nahsp-abelian` | SNF/HNF, subgroup lattices, dual groups, Abelian HSP, order finding |
//! | [`hsp`] | `nahsp-core` | the `HspSolver` façade, Theorems 6–13, baselines |
//!
//! ## Building and testing
//!
//! The workspace is fully offline: the ecosystem dependencies (`rand`,
//! `rayon`, `bytes`, `proptest`, `criterion`) are vendored as API-subset
//! shims under `crates/shims/` and wired in by path, so
//! `cargo build --release && cargo test -q` works with no registry access.
//! Shared test scaffolding (seeded RNGs, ground-truth subgroup checks,
//! oracle builders) lives in `crates/testkit` (`nahsp-testkit`).

pub use nahsp_abelian as abelian;
pub use nahsp_core as hsp;
pub use nahsp_groups as groups;
pub use nahsp_numtheory as numtheory;
pub use nahsp_qsim as qsim;

/// Everything a typical caller needs, in one import.
///
/// The solver façade ([`HspSolver`](hsp::solver::HspSolver),
/// [`HspInstance`](hsp::solver::HspInstance),
/// [`Strategy`](hsp::solver::Strategy),
/// [`HspReport`](hsp::solver::HspReport), [`HspError`](hsp::HspError)) is
/// the primary surface; the per-theorem `try_*` entry points and the
/// substrate types ride along for callers that need one specific pipeline.
pub mod prelude {
    pub use nahsp_abelian::hsp::{AbelianHsp, Backend, HidingOracle, SolveError, SubgroupOracle};
    pub use nahsp_abelian::vote::{VoteLedger, VoteSummary, VotedOracle};
    pub use nahsp_abelian::{
        BackendSink, CancelToken, EngineContext, OrderFinder, SubgroupLattice,
    };
    pub use nahsp_core::baseline::{
        birthday_collision, ettinger_hoyer_dihedral, try_exhaustive_scan,
    };
    pub use nahsp_core::ea2::{
        semidirect_coords, try_hsp_ea2_cyclic, try_hsp_ea2_general, Ea2GroundTruth, N2Coords,
    };
    pub use nahsp_core::error::HspError;
    pub use nahsp_core::lemma9::{solve_state_hsp, Lemma9Backend};
    pub use nahsp_core::membership::{abelian_membership, abelian_membership_slp, discrete_log};
    pub use nahsp_core::noise::{NoiseConfig, NoisyOracle, OracleFault};
    pub use nahsp_core::normal_hsp::{
        try_hidden_normal_subgroup, try_hidden_normal_subgroup_perm, try_normal_subgroup_seeds,
        QuotientEngine,
    };
    pub use nahsp_core::oracle::{CosetTableOracle, FnOracle, HidingFunction, PermCosetOracle};
    pub use nahsp_core::presentation::{
        present_abelian, present_by_enumeration, QuotientPresentation,
    };
    pub use nahsp_core::quotient::HiddenQuotient;
    pub use nahsp_core::service::{
        ServiceStatsSnapshot, SolverService, SolverServiceBuilder, SubmitOptions, Ticket,
        TicketStatus,
    };
    pub use nahsp_core::small_commutator::try_hsp_small_commutator;
    pub use nahsp_core::solver::{
        HspInstance, HspReport, HspSolver, HspSolverBuilder, Probe, QueryStats, SolveContext,
        Strategy, StrategyDetail, StrategyEngine, StrategyOutcome, Verdict,
    };
    pub use nahsp_core::watrous::{quotient_abelian_membership, quotient_order, CosetStates};
    pub use nahsp_groups::closure::enumerate_subgroup;
    pub use nahsp_groups::dihedral::Dihedral;
    pub use nahsp_groups::extraspecial::Extraspecial;
    pub use nahsp_groups::matgf::{Gf2Mat, MatGFp, MatGroupGFp};
    pub use nahsp_groups::perm::PermGroup;
    pub use nahsp_groups::semidirect::Semidirect;
    pub use nahsp_groups::series::{polycyclic_series, solvable_composition_factors};
    pub use nahsp_groups::{AbelianProduct, CyclicGroup, Group, Perm, StabilizerChain};

    // Back-compat: the pre-solver free functions remain importable through
    // the prelude; each is a thin deprecated shim over its try_* twin.
    #[allow(deprecated)]
    pub use nahsp_core::baseline::exhaustive_scan;
    #[allow(deprecated)]
    pub use nahsp_core::ea2::{hsp_ea2_cyclic, hsp_ea2_general};
    #[allow(deprecated)]
    pub use nahsp_core::normal_hsp::{
        hidden_normal_subgroup, hidden_normal_subgroup_perm, normal_subgroup_seeds,
    };
    #[allow(deprecated)]
    pub use nahsp_core::small_commutator::hsp_small_commutator;
}
