//! # nahsp — non-Abelian hidden subgroup algorithms
//!
//! A full reproduction of **Ivanyos, Magniez & Santha, "Efficient quantum
//! algorithms for some instances of the non-Abelian hidden subgroup
//! problem"** (SPAA 2001, arXiv:quant-ph/0102014), including every substrate
//! the paper's results stand on: a mixed-radix state-vector quantum
//! simulator, a black-box group framework (permutation groups with
//! Schreier–Sims, matrix groups over finite fields, semidirect/wreath
//! products, extraspecial `p`-groups), exact integer linear algebra
//! (Smith/Hermite normal forms), the Abelian HSP engine, and the paper's
//! algorithms themselves (Theorems 6–13).
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`numtheory`] | `nahsp-numtheory` | gcd/CRT, primality, factoring, dlog, continued fractions |
//! | [`qsim`] | `nahsp-qsim` | state vectors, gates, QFTs, oracles, measurement |
//! | [`groups`] | `nahsp-groups` | the `Group` trait and every concrete family + machinery |
//! | [`abelian`] | `nahsp-abelian` | SNF/HNF, subgroup lattices, dual groups, Abelian HSP, order finding |
//! | [`hsp`] | `nahsp-core` | Theorems 6, 7, 8, 10, 11, 13, Lemma 9, Corollary 12, baselines |
//!
//! ## Building and testing
//!
//! The workspace is fully offline: the ecosystem dependencies (`rand`,
//! `rayon`, `bytes`, `proptest`, `criterion`) are vendored as API-subset
//! shims under `crates/shims/` and wired in by path, so
//! `cargo build --release && cargo test -q` works with no registry access.
//! Shared test scaffolding (seeded RNGs, ground-truth subgroup checks,
//! oracle builders) lives in `crates/testkit` (`nahsp-testkit`).
//!
//! ## Quickstart
//!
//! ```
//! use nahsp::prelude::*;
//! use rand::SeedableRng;
//!
//! // The Heisenberg group of order 27 — extraspecial, so Corollary 12
//! // applies: HSP solvable in time poly(input + p).
//! let g = Extraspecial::heisenberg(3);
//! let hidden = vec![g.center_generator()];
//! let oracle = CosetTableOracle::new(g.clone(), &hidden, 1000);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let found = hsp_small_commutator(&g, &oracle, 1000, &mut rng);
//!
//! // The recovered generators span exactly the hidden subgroup.
//! let recovered = enumerate_subgroup(&g, &found.h_generators, 1000).unwrap();
//! assert_eq!(recovered.len(), 3);
//! ```

pub use nahsp_abelian as abelian;
pub use nahsp_core as hsp;
pub use nahsp_groups as groups;
pub use nahsp_numtheory as numtheory;
pub use nahsp_qsim as qsim;

/// Everything a typical caller needs, in one import.
pub mod prelude {
    pub use nahsp_abelian::hsp::{AbelianHsp, Backend, HidingOracle, SubgroupOracle};
    pub use nahsp_abelian::{OrderFinder, SubgroupLattice};
    pub use nahsp_core::baseline::{birthday_collision, ettinger_hoyer_dihedral, exhaustive_scan};
    pub use nahsp_core::ea2::{
        hsp_ea2_cyclic, hsp_ea2_general, semidirect_coords, Ea2GroundTruth, N2Coords,
    };
    pub use nahsp_core::lemma9::{solve_state_hsp, Lemma9Backend};
    pub use nahsp_core::membership::{abelian_membership, abelian_membership_slp, discrete_log};
    pub use nahsp_core::normal_hsp::{
        hidden_normal_subgroup, hidden_normal_subgroup_perm, normal_subgroup_seeds, QuotientEngine,
    };
    pub use nahsp_core::oracle::{CosetTableOracle, FnOracle, HidingFunction, PermCosetOracle};
    pub use nahsp_core::presentation::{
        present_abelian, present_by_enumeration, QuotientPresentation,
    };
    pub use nahsp_core::quotient::HiddenQuotient;
    pub use nahsp_core::small_commutator::hsp_small_commutator;
    pub use nahsp_core::watrous::{quotient_abelian_membership, quotient_order, CosetStates};
    pub use nahsp_groups::closure::enumerate_subgroup;
    pub use nahsp_groups::dihedral::Dihedral;
    pub use nahsp_groups::extraspecial::Extraspecial;
    pub use nahsp_groups::matgf::{Gf2Mat, MatGFp, MatGroupGFp};
    pub use nahsp_groups::perm::PermGroup;
    pub use nahsp_groups::semidirect::Semidirect;
    pub use nahsp_groups::series::{polycyclic_series, solvable_composition_factors};
    pub use nahsp_groups::{AbelianProduct, CyclicGroup, Group, Perm, StabilizerChain};
}
